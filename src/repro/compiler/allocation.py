"""Pass 7 — Allocation: RTL → LTL register allocation.

Three stages, mirroring the structure (not the sophistication) of
CompCert's allocator:

1. **Liveness** — backward dataflow fixpoint over the CFG.
2. **Assignment** — virtual registers live across a call are assigned
   stack slots (calls clobber every machine register under our
   convention); the rest are greedily colored with the ``POOL``
   registers against the interference graph, spilling the remainder.
3. **Spill-code emission** — each RTL instruction expands to a short
   LTL sequence that reloads slot operands into per-instruction
   ``SCRATCH`` registers and stores slot results back, maintaining the
   Stacking invariant: *computing* instructions touch machine registers
   only; slots appear only in ``move``s.

Calling convention: argument moves into ``ARG_REGS`` precede calls
(sources are never argument registers — the pool and the argument set
are disjoint — so the moves cannot clobber each other), results flow
from ``RET_REG``.
"""

from repro.common.errors import CompileError
from repro.langs.ir import ltl, rtl
from repro.langs.x86.regs import ARG_REGS, POOL, RET_REG, SCRATCH, slot


def _uses(instr):
    if isinstance(instr, rtl.Iop):
        return set(instr.args)
    if isinstance(instr, rtl.Iload):
        return {instr.addr}
    if isinstance(instr, rtl.Istore):
        return {instr.addr, instr.src}
    if isinstance(instr, (rtl.Icall, rtl.Itailcall)):
        return set(instr.args)
    if isinstance(instr, rtl.Icond):
        return set(instr.args)
    if isinstance(instr, rtl.Ireturn):
        return set() if instr.src is None else {instr.src}
    if isinstance(instr, rtl.Iprint):
        return {instr.src}
    return set()


def _defs(instr):
    if isinstance(
        instr, (rtl.Iconst, rtl.Iaddrglobal, rtl.Iaddrstack, rtl.Iop,
                rtl.Iload)
    ):
        return {instr.dst}
    if isinstance(instr, rtl.Icall) and instr.dst is not None:
        return {instr.dst}
    return set()


def _successors(instr):
    if isinstance(instr, rtl.Icond):
        return (instr.iftrue, instr.iffalse)
    if isinstance(instr, (rtl.Ireturn, rtl.Itailcall)):
        return ()
    return (instr.next,)


def liveness(func):
    """``pc -> live_out`` by backward fixpoint."""
    live_in = {pc: set() for pc in func.code}
    live_out = {pc: set() for pc in func.code}
    changed = True
    while changed:
        changed = False
        for pc, instr in func.code.items():
            out = set()
            for succ in _successors(instr):
                out |= live_in[succ]
            inn = _uses(instr) | (out - _defs(instr))
            if out != live_out[pc] or inn != live_in[pc]:
                live_out[pc] = out
                live_in[pc] = inn
                changed = True
    return live_in, live_out


def assign_locations(func):
    """Map each virtual register to a machine register or a slot."""
    live_in, live_out = liveness(func)

    vregs = set(func.params)
    for instr in func.code.values():
        vregs |= _uses(instr) | _defs(instr)

    # Values live across a call must survive total clobbering.
    must_spill = set()
    for pc, instr in func.code.items():
        if isinstance(instr, rtl.Icall):
            across = set(live_out[pc])
            across.discard(instr.dst)
            must_spill |= across

    # Interference: defs against simultaneously-live registers.
    interference = {v: set() for v in vregs}
    for pc, instr in func.code.items():
        for d in _defs(instr):
            for other in live_out[pc]:
                if other != d:
                    interference[d].add(other)
                    interference[other].add(d)
    # Parameters are all live simultaneously at entry.
    for p in func.params:
        for q in func.params:
            if p != q:
                interference[p].add(q)

    locs = {}
    next_slot = 0
    for v in sorted(vregs):
        if v in must_spill:
            locs[v] = slot(next_slot)
            next_slot += 1
    for v in sorted(vregs):
        if v in locs:
            continue
        taken = {
            locs[u] for u in interference[v] if u in locs
        }
        choice = None
        for reg in POOL:
            if reg not in taken:
                choice = reg
                break
        if choice is None:
            choice = slot(next_slot)
            next_slot += 1
        locs[v] = choice
    return locs, next_slot


class _Emitter:
    def __init__(self, func, locs, numslots):
        self.func = func
        self.locs = locs
        self.numslots = numslots
        self.code = {}
        self._next = (max(func.code) + 1) if func.code else 0

    def fresh(self):
        pc = self._next
        self._next += 1
        return pc

    def reload(self, vreg, scratch_index, steps):
        """Arrange for ``vreg``'s value to be in a machine register.

        Appends a reload move to ``steps`` when it lives in a slot;
        returns the register holding the value."""
        loc = self.locs[vreg]
        if isinstance(loc, str):
            return loc
        scratch = SCRATCH[scratch_index]
        steps.append(
            lambda succ, l=loc, s=scratch: ltl.Lop(
                "move", (l,), s, succ
            )
        )
        return scratch

    def result(self, vreg, steps, compute):
        """Emit ``compute(target_reg)`` plus a spill move if needed."""
        loc = self.locs[vreg]
        if isinstance(loc, str):
            steps.append(lambda succ, r=loc: compute(r, succ))
            return
        scratch = SCRATCH[0]
        steps.append(lambda succ, r=scratch: compute(r, succ))
        steps.append(
            lambda succ, l=loc, s=scratch: ltl.Lop(
                "move", (s,), l, succ
            )
        )

    def expand(self, pc, instr):
        steps = []
        final_next = None

        if isinstance(instr, rtl.Inop):
            steps.append(lambda succ: ltl.Lnop(succ))
            final_next = instr.next

        elif isinstance(instr, rtl.Iconst):
            self.result(
                instr.dst,
                steps,
                lambda r, succ, n=instr.n: ltl.Lconst(n, r, succ),
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Iaddrglobal):
            self.result(
                instr.dst,
                steps,
                lambda r, succ, n=instr.name: ltl.Laddrglobal(n, r, succ),
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Iaddrstack):
            self.result(
                instr.dst,
                steps,
                lambda r, succ, o=instr.ofs: ltl.Laddrstack(o, r, succ),
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Iop) and instr.op == "move":
            src_loc = self.locs[instr.args[0]]
            dst_loc = self.locs[instr.dst]
            if isinstance(src_loc, str) or isinstance(dst_loc, str):
                steps.append(
                    lambda succ: ltl.Lop("move", (src_loc,), dst_loc, succ)
                )
            else:
                scratch = SCRATCH[0]
                steps.append(
                    lambda succ: ltl.Lop("move", (src_loc,), scratch, succ)
                )
                steps.append(
                    lambda succ: ltl.Lop("move", (scratch,), dst_loc, succ)
                )
            final_next = instr.next

        elif isinstance(instr, rtl.Iop):
            regs = [
                self.reload(arg, i, steps)
                for i, arg in enumerate(instr.args)
            ]
            self.result(
                instr.dst,
                steps,
                lambda r, succ, op=instr.op, a=tuple(regs): ltl.Lop(
                    op, a, r, succ
                ),
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Iload):
            addr = self.reload(instr.addr, 1, steps)
            self.result(
                instr.dst,
                steps,
                lambda r, succ, a=addr: ltl.Lload(a, r, succ),
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Istore):
            addr = self.reload(instr.addr, 1, steps)
            src = self.reload(instr.src, 2, steps)
            steps.append(
                lambda succ: ltl.Lstore(addr, src, succ)
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Icall):
            for i, arg in enumerate(instr.args):
                loc = self.locs[arg]
                steps.append(
                    lambda succ, l=loc, d=ARG_REGS[i]: ltl.Lop(
                        "move", (l,), d, succ
                    )
                )
            steps.append(
                lambda succ, f=instr.fname, n=len(instr.args),
                ext=instr.external: ltl.Lcall(f, n, succ, ext)
            )
            if instr.dst is not None:
                dst_loc = self.locs[instr.dst]
                steps.append(
                    lambda succ, l=dst_loc: ltl.Lop(
                        "move", (RET_REG,), l, succ
                    )
                )
            final_next = instr.next

        elif isinstance(instr, rtl.Itailcall):
            for i, arg in enumerate(instr.args):
                loc = self.locs[arg]
                steps.append(
                    lambda succ, l=loc, d=ARG_REGS[i]: ltl.Lop(
                        "move", (l,), d, succ
                    )
                )
            steps.append(
                lambda succ, f=instr.fname, n=len(instr.args):
                ltl.Ltailcall(f, n)
            )
            final_next = None

        elif isinstance(instr, rtl.Icond):
            regs = [
                self.reload(arg, i, steps)
                for i, arg in enumerate(instr.args)
            ]
            steps.append(
                lambda succ, op=instr.op, a=tuple(regs): ltl.Lcond(
                    op, a, instr.iftrue, instr.iffalse
                )
            )
            final_next = None

        elif isinstance(instr, rtl.Ireturn):
            if instr.src is None:
                steps.append(
                    lambda succ: ltl.Lconst(0, RET_REG, succ)
                )
            else:
                loc = self.locs[instr.src]
                steps.append(
                    lambda succ, l=loc: ltl.Lop(
                        "move", (l,), RET_REG, succ
                    )
                )
            steps.append(lambda succ: ltl.Lreturn())
            final_next = None

        elif isinstance(instr, rtl.Ispawn):
            steps.append(
                lambda succ, f=instr.fname: ltl.Lspawn(f, succ)
            )
            final_next = instr.next

        elif isinstance(instr, rtl.Iprint):
            src = self.reload(instr.src, 0, steps)
            steps.append(lambda succ, s=src: ltl.Lprint(s, succ))
            final_next = instr.next

        else:
            raise CompileError(
                "cannot allocate instruction {!r}".format(instr)
            )

        # Chain the steps; the last one's successor is final_next (or
        # irrelevant for terminators).
        pcs = [pc] + [self.fresh() for _ in steps[1:]]
        for i, build in enumerate(steps):
            succ = pcs[i + 1] if i + 1 < len(pcs) else final_next
            self.code[pcs[i]] = build(succ)

    def translate(self):
        for pc, instr in self.func.code.items():
            self.expand(pc, instr)
        # Entry moves: incoming arguments into their assigned locations.
        entry = self.func.entry
        for i, param in enumerate(self.func.params):
            loc = self.locs[param]
            move_pc = self.fresh()
            self.code[move_pc] = ltl.Lop(
                "move", (ARG_REGS[i],), loc, entry
            )
            entry = move_pc
        return ltl.LTLFunction(
            self.func.name,
            len(self.func.params),
            self.func.stacksize,
            self.numslots,
            entry,
            self.code,
        )


def allocation(module):
    """Translate an RTL module to LTL."""
    functions = {}
    for name, func in module.functions.items():
        if len(func.params) > len(ARG_REGS):
            raise CompileError(
                "{} has more than {} parameters".format(
                    name, len(ARG_REGS)
                )
            )
        locs, numslots = assign_locations(func)
        functions[name] = _Emitter(func, locs, numslots).translate()
    return module.with_functions(functions)
