"""Extension pass — Deadcode: liveness-based dead code elimination on
RTL.

Pure instructions (``Iconst``, ``Iop``, address computations, *loads*)
whose destination is dead afterwards become ``Inop``. Removing a dead
load shrinks the read footprint — legal under ``FPmatch``, and one of
the optimizations the paper's criterion admits that stricter
same-memory-trace simulations (CompCertTSO, Lochbihler) must restrict.

Stores, calls, conditions and events are never removed.
"""

from repro.langs.ir import rtl
from repro.compiler.allocation import liveness


def transf_function(func):
    """Eliminate dead pure instructions in one function."""
    _live_in, live_out = liveness(func)
    code = {}
    for pc, instr in func.code.items():
        if isinstance(
            instr,
            (rtl.Iconst, rtl.Iaddrglobal, rtl.Iaddrstack, rtl.Iload),
        ):
            if instr.dst not in live_out[pc]:
                code[pc] = rtl.Inop(instr.next)
                continue
        if isinstance(instr, rtl.Iop):
            if instr.dst not in live_out[pc]:
                code[pc] = rtl.Inop(instr.next)
                continue
        code[pc] = instr
    return rtl.RTLFunction(
        func.name, func.params, func.stacksize, func.entry, code
    )


def deadcode(module):
    """Eliminate dead code in every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
