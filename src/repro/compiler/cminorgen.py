"""Pass 2 — Cminorgen: Csharpminor → Cminor.

Stack layout construction: the named stack locals of Csharpminor are
packed into a single per-activation stack block (one word each), and
``EAddrLocal(name)`` becomes ``EAddrStack(offset)``. Named temporaries
become consecutive integers, parameters first — the numbering CompCert
establishes for the register-based middle end.
"""

from repro.common.errors import CompileError
from repro.langs.ir import cminor as cm
from repro.langs.ir import csharpminor as csm


def _collect_temps(node, acc):
    if isinstance(node, csm.ETemp):
        acc.append(node.name)
    if isinstance(node, csm.SSet):
        acc.append(node.temp)
    if isinstance(node, csm.SCall) and node.dst is not None:
        acc.append(node.dst)
    for field in getattr(node, "_fields", ()):
        value = getattr(node, field)
        if isinstance(value, csm.Node):
            _collect_temps(value, acc)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, csm.Node):
                    _collect_temps(item, acc)


class _FunctionTranslator:
    def __init__(self, func):
        self.func = func
        ordered = list(func.params)
        seen = set(ordered)
        found = []
        _collect_temps(func.body, found)
        for name in found:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        self.temp_index = {name: i for i, name in enumerate(ordered)}
        self.slot_offset = {
            name: i for i, name in enumerate(func.stack_locals)
        }

    def temp(self, name):
        idx = self.temp_index.get(name)
        if idx is None:
            raise CompileError("unknown temp {!r}".format(name))
        return idx

    def expr(self, e):
        if isinstance(e, csm.EConst):
            return cm.EConst(e.n)
        if isinstance(e, csm.ETemp):
            return cm.ETemp(self.temp(e.name))
        if isinstance(e, csm.EAddrLocal):
            ofs = self.slot_offset.get(e.name)
            if ofs is None:
                raise CompileError(
                    "unknown stack local {!r}".format(e.name)
                )
            return cm.EAddrStack(ofs)
        if isinstance(e, csm.EAddrGlobal):
            return cm.EAddrGlobal(e.name)
        if isinstance(e, csm.ELoad):
            return cm.ELoad(self.expr(e.addr))
        if isinstance(e, csm.EUnop):
            return cm.EUnop(e.op, self.expr(e.arg))
        if isinstance(e, csm.EBinop):
            return cm.EBinop(e.op, self.expr(e.left), self.expr(e.right))
        raise CompileError("cannot translate expression {!r}".format(e))

    def stmt(self, s):
        if isinstance(s, csm.SSkip):
            return cm.SSkip()
        if isinstance(s, csm.SSet):
            return cm.SSet(self.temp(s.temp), self.expr(s.expr))
        if isinstance(s, csm.SStore):
            return cm.SStore(self.expr(s.addr), self.expr(s.expr))
        if isinstance(s, csm.SCall):
            dst = self.temp(s.dst) if s.dst is not None else None
            return cm.SCall(
                dst,
                s.fname,
                [self.expr(a) for a in s.args],
                s.external,
            )
        if isinstance(s, csm.SPrint):
            return cm.SPrint(self.expr(s.expr))
        if isinstance(s, csm.SSeq):
            return cm.SSeq([self.stmt(x) for x in s.stmts])
        if isinstance(s, csm.SIf):
            return cm.SIf(
                self.expr(s.cond), self.stmt(s.then), self.stmt(s.els)
            )
        if isinstance(s, csm.SWhile):
            return cm.SWhile(self.expr(s.cond), self.stmt(s.body))
        if isinstance(s, csm.SSpawn):
            return cm.SSpawn(s.fname)
        if isinstance(s, csm.SReturn):
            expr = self.expr(s.expr) if s.expr is not None else None
            return cm.SReturn(expr)
        raise CompileError("cannot translate statement {!r}".format(s))

    def translate(self):
        return cm.CmFunction(
            self.func.name,
            len(self.func.params),
            len(self.func.stack_locals),
            self.stmt(self.func.body),
        )


def cminorgen(module):
    """Translate a Csharpminor module to Cminor."""
    functions = {
        name: _FunctionTranslator(func).translate()
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
