"""Pass 5 — Tailcall: RTL → RTL tail-call recognition.

``Icall(f, args, dst, n)`` immediately followed by ``Ireturn(dst)``
(or a call whose ignored result feeds ``Ireturn(None)``) becomes
``Itailcall`` when the function owns no stack block (the CompCert side
condition: the frame must be dead at the call, which a non-empty stack
block would contradict) and the callee is internal.
"""

from repro.langs.ir import rtl


def _is_tail_position(func, instr):
    """The call's result flows (through moves only) into the return."""
    value = instr.dst
    pc = instr.next
    for _ in range(len(func.code) + 1):
        nxt = func.code.get(pc)
        if isinstance(nxt, rtl.Ireturn):
            return nxt.src == value
        if (
            isinstance(nxt, rtl.Iop)
            and nxt.op == "move"
            and value is not None
            and nxt.args == (value,)
        ):
            value = nxt.dst
            pc = nxt.next
            continue
        if isinstance(nxt, rtl.Inop):
            pc = nxt.next
            continue
        return False
    return False


def transf_function(func):
    """Rewrite eligible calls of one function."""
    if func.stacksize != 0:
        return func
    code = dict(func.code)
    changed = False
    for pc, instr in func.code.items():
        if not isinstance(instr, rtl.Icall) or instr.external:
            continue
        if _is_tail_position(func, instr):
            code[pc] = rtl.Itailcall(instr.fname, instr.args)
            changed = True
    if not changed:
        return func
    return rtl.RTLFunction(
        func.name, func.params, func.stacksize, func.entry, code
    )


def tailcall(module):
    """Apply tail-call recognition to every function."""
    functions = {
        name: transf_function(func)
        for name, func in module.functions.items()
    }
    return module.with_functions(functions)
