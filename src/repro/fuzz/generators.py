"""Seeded random-program generators for the fuzzing campaign.

The hypothesis strategies in ``tests/integration/test_differential.py``
made good one-off tests but a poor campaign substrate: hypothesis owns
the seed, so a corpus cannot be reproduced from a number, and the
generators lived inside a test module the library could not import.
This module is the promotion: plain :class:`random.Random`-driven
generators with the hard determinism contract the campaign's corpus
keys depend on — **the same (kind, seed) pair always yields the
byte-identical program**, across processes, platforms and
``PYTHONHASHSEED`` values (nothing here consults ``hash()``; per-index
seeds are derived with sha256).

Three scenario families, mirroring the paper's claims:

* ``minic-seq`` — sequential MiniC through the optimizing pipeline:
  per-pass translation validation plus source-vs-target behaviour
  equivalence (the GCorrect conclusion on arbitrary safe programs).
* ``cimp-pair`` — two-thread CImp programs for the framework lemmas:
  DRF ⇔ NPDRF must always agree, and the preemptive and
  non-preemptive behaviour sets must coincide whenever the program is
  DRF (Lem. 9).
* ``minic-lock`` — two-thread MiniC clients whose every shared access
  sits inside a ``lock()``/``unlock()`` critical section; linked
  against the lock object they must be race-free, so *any* race is a
  finding. ``minic-lock-broken`` is the deliberately broken variant
  (one thread's lock discipline dropped, in the style of
  ``tests/tso/test_broken_objects.py``): it exists so the campaign's
  own detection/minimization/replay path can be exercised on demand —
  a fuzzer whose alarm has never rung is untested equipment.

Generated programs are *safe* by construction (locals initialized,
divisors non-zero, loops bounded): the paper's correctness statements
assume ``Safe(P)``, so an unsafe program would fuzz the assumption,
not the theorem.
"""

import hashlib
import random

#: Bump when generator output changes shape: the corpus keys programs
#: by content hash, so a silently changed generator would make old
#: checkpoints claim coverage of programs that can no longer be
#: regenerated.
GENERATOR_VERSION = 1

_LOCALS = ("a", "b", "c")


class GeneratorError(Exception):
    """An unknown kind name or invalid generator request."""


class FuzzInput:
    """One generated program plus how the campaign must run it.

    ``content_hash`` is the corpus/dedup key: sha256 over the kind,
    entries, flags and source bytes (never Python ``hash()`` — corpus
    keys must survive interpreter restarts).
    """

    __slots__ = ("kind", "index", "seed", "source", "entries", "lock",
                 "optimize", "expect_drf", "_hash")

    def __init__(self, kind, index, seed, source, entries, lock,
                 optimize, expect_drf):
        self.kind = kind
        self.index = index
        self.seed = seed
        self.source = source
        self.entries = tuple(entries)
        self.lock = bool(lock)
        self.optimize = bool(optimize)
        self.expect_drf = bool(expect_drf)
        self._hash = None

    @property
    def content_hash(self):
        if self._hash is None:
            digest = hashlib.sha256()
            digest.update(self.kind.encode())
            digest.update(b"\x00")
            digest.update(",".join(self.entries).encode())
            digest.update(b"\x00")
            digest.update(
                "lock={} optimize={}".format(
                    int(self.lock), int(self.optimize)
                ).encode()
            )
            digest.update(b"\x00")
            digest.update(self.source.encode())
            self._hash = digest.hexdigest()
        return self._hash

    @property
    def language(self):
        return "cimp" if self.kind.startswith("cimp") else "minic"

    @property
    def extension(self):
        return ".cimp" if self.language == "cimp" else ".c"

    def __repr__(self):
        return "FuzzInput(kind={!r}, index={}, hash={})".format(
            self.kind, self.index, self.content_hash[:12]
        )


def derive_seed(seed, index):
    """The per-input seed for position ``index`` of a campaign.

    sha256-based, NOT ``hash()``-based: campaign resumability requires
    the derivation to agree across interpreter launches regardless of
    ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(
        "repro-fuzz:{}:{}:{}".format(
            GENERATOR_VERSION, seed, index
        ).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


# ----- MiniC expression/statement generators --------------------------------


def _minic_expr(rng, depth):
    if depth <= 0 or rng.random() < 0.35:
        if rng.random() < 0.5:
            return str(rng.randint(-5, 5))
        return rng.choice(_LOCALS + ("g",))
    form = rng.randrange(3)
    if form == 0:
        op = rng.choice(["+", "-", "*", "<", "<=", "==", "!="])
        return "({} {} {})".format(
            _minic_expr(rng, depth - 1), op, _minic_expr(rng, depth - 1)
        )
    if form == 1:
        # Division by a positive constant only: Safe(P) forbids
        # division by zero.
        op = rng.choice(["/", "%"])
        return "({} {} {})".format(
            _minic_expr(rng, depth - 1), op, rng.randint(1, 4)
        )
    return "(-{})".format(_minic_expr(rng, depth - 1))


def _minic_stmt(rng, depth):
    form = rng.randrange(5 if depth > 0 else 3)
    if form == 0:
        return "{} = {};".format(
            rng.choice(_LOCALS + ("g",)), _minic_expr(rng, 2)
        )
    if form == 1:
        return "print({});".format(_minic_expr(rng, 2))
    if form == 2:
        return "{} = helper({});".format(
            rng.choice(_LOCALS), _minic_expr(rng, 2)
        )
    sub = " ".join(
        _minic_stmt(rng, depth - 1)
        for _ in range(rng.randint(1, 3))
    )
    if form == 3:
        alt = " ".join(
            _minic_stmt(rng, depth - 1)
            for _ in range(rng.randint(1, 3))
        )
        return "if ({}) {{ {} }} else {{ {} }}".format(
            _minic_expr(rng, 2), sub, alt
        )
    # Bounded loop over a dedicated counter no body statement touches.
    return "i = {}; while (i > 0) {{ i = i - 1; {} }}".format(
        rng.randint(1, 3), sub
    )


def gen_minic_seq(rng):
    """A safe sequential MiniC program (the differential-compilation
    family: worst case 5 top-level bounded loops of 3 iterations)."""
    body = " ".join(
        _minic_stmt(rng, 1) for _ in range(rng.randint(1, 5))
    )
    source = (
        "int g = 1;\n"
        "int helper(int a) { return a * 2 - 1; }\n"
        "void main() {\n"
        "  int a = 1; int b = 2; int c = 3; int i = 0;\n"
        "  " + body + "\n"
        "}\n"
    )
    return source, ("main",), False, True, True


# ----- CImp two-thread generator --------------------------------------------

_CIMP_PLAIN = (
    "[C] := x + 1;",
    "x := [C];",
    "x := x + 1;",
    "print(x);",
    "skip;",
)

_CIMP_ATOMIC = (
    "<y := [C]; [C] := y + 1;>",
    "<[C] := 5;>",
    "<y := [C];>",
)


def _cimp_thread(rng):
    stmts = []
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.4:
            stmts.append(rng.choice(_CIMP_ATOMIC))
        else:
            stmts.append(rng.choice(_CIMP_PLAIN))
    return "x := 0; " + " ".join(stmts)


def gen_cimp_pair(rng):
    """Two CImp threads over one shared cell (racy or not — the
    invariant under test is lemma-level *agreement*, not DRF)."""
    source = "t1(){{ {} }} t2(){{ {} }}".format(
        _cimp_thread(rng), _cimp_thread(rng)
    )
    return source, ("t1", "t2"), False, False, False


# ----- lock-disciplined MiniC clients ---------------------------------------


def _critical_stmt(rng, me):
    """One statement that may touch the shared globals x/y (only ever
    emitted inside a critical section)."""
    form = rng.randrange(4)
    if form == 0:
        return "x = x + {};".format(rng.randint(1, 3))
    if form == 1:
        return "y = x + {};".format(me)
    if form == 2:
        return "{} = x;".format(rng.choice(("a", "b")))
    return "x = {} + {};".format(rng.choice(("a", "b")), rng.randint(0, 2))


def _lock_thread(rng, name, me, locked):
    """One client thread; with ``locked=False`` the discipline is
    deliberately dropped (the broken-variant injection)."""
    lines = ["void {}() {{".format(name)]
    lines.append("  int a = {}; int b = {};".format(
        rng.randint(0, 3), rng.randint(0, 3)
    ))
    if locked:
        lines.append("  lock();")
    # Every client writes x at least once: two generated threads then
    # conflict *by construction* unless the lock discipline protects
    # them — the broken variant's race must be guaranteed, not left to
    # the luck of the statement draw (read-read pairs don't conflict).
    lines.append("  x = x + {};".format(me))
    for _ in range(rng.randint(0, 2)):
        lines.append("  " + _critical_stmt(rng, me))
    if locked:
        lines.append("  unlock();")
    lines.append("  print(a);")
    lines.append("}")
    return "\n".join(lines)


def _gen_minic_lock(rng, broken):
    threads = [
        _lock_thread(rng, "t1", 1, True),
        _lock_thread(rng, "t2", 2, not broken),
    ]
    source = (
        "extern void lock();\n"
        "extern void unlock();\n"
        "int x = 0;\n"
        "int y = 0;\n"
        + "\n".join(threads)
        + "\n"
    )
    # The broken variant does NOT promise DRF: the race it provokes is
    # an *expected* finding (the campaign classifies by this flag).
    return source, ("t1", "t2"), True, False, not broken


def gen_minic_lock(rng):
    """A two-thread lock client: every shared access inside a critical
    section, so the linked program must be DRF."""
    return _gen_minic_lock(rng, broken=False)


def gen_minic_lock_broken(rng):
    """The injected-divergence variant: thread 2 skips the lock, so a
    race is *expected* — the campaign must detect it, minimize it and
    emit a replayable witness."""
    return _gen_minic_lock(rng, broken=True)


#: kind name -> generator(rng) -> (source, entries, lock, optimize,
#: expect_drf).
KINDS = {
    "minic-seq": gen_minic_seq,
    "cimp-pair": gen_cimp_pair,
    "minic-lock": gen_minic_lock,
    "minic-lock-broken": gen_minic_lock_broken,
}

#: The campaign default: the clean families only. The broken variant
#: must be asked for (``--inject-broken``) — it exists to test the
#: fuzzer, not the compiler.
DEFAULT_KINDS = ("minic-seq", "cimp-pair", "minic-lock")


def generate(kind, seed, index=0):
    """The deterministic :class:`FuzzInput` for ``(kind, seed)``."""
    gen = KINDS.get(kind)
    if gen is None:
        raise GeneratorError(
            "unknown generator kind {!r} (expected one of {})".format(
                kind, ", ".join(sorted(KINDS))
            )
        )
    rng = random.Random(seed)
    source, entries, lock, optimize, expect_drf = gen(rng)
    return FuzzInput(
        kind, index, seed, source, entries, lock, optimize, expect_drf
    )


def plan(seed, count, kinds=DEFAULT_KINDS):
    """The campaign's input sequence: ``count`` inputs round-robining
    over ``kinds``, each with its sha256-derived per-index seed.

    Deterministic end to end: ``plan(S, N)[i]`` is the same program in
    every process, which is what lets a resumed campaign skip finished
    inputs by content hash alone.
    """
    kinds = tuple(kinds)
    if not kinds:
        raise GeneratorError("plan needs at least one generator kind")
    for kind in kinds:
        if kind not in KINDS:
            raise GeneratorError(
                "unknown generator kind {!r} (expected one of {})"
                .format(kind, ", ".join(sorted(KINDS)))
            )
    return [
        generate(kinds[i % len(kinds)], derive_seed(seed, i), index=i)
        for i in range(count)
    ]
