"""On-disk campaign state: corpus, findings log, checkpoint.

A campaign directory is self-describing and survives anything short of
losing the disk:

* ``programs/`` — every distinct generated program, stored once under
  its content hash (the same sha256 key shape
  :func:`repro.obs.ledger.content_hash` uses for run manifests);
  duplicate generator output dedups here, and witness artifacts
  reference these files so ``repro replay`` can rebuild the program.
* ``witnesses/`` — one replayable witness JSON per minimized finding.
* ``findings.json`` — the versioned findings log (a single JSON
  document; ``repro inspect`` renders it).
* ``checkpoint.json`` — the resume point, wrapped in
  :mod:`repro.common.serialize`'s persistent document envelope and
  rewritten atomically (:func:`repro.obs.status.write_atomic`) after
  every completed input: a campaign killed with ``kill -9`` mid-run
  loses at most the inputs that were in flight, and a resume skips
  everything in the checkpoint's ``done`` map by content hash.

Only the campaign *coordinator* writes here (workers ship results over
a queue), so no file needs cross-process locking; atomic rewrites are
still used throughout so a concurrent reader — ``repro inspect``, a
watcher, the CI assertions — never sees a torn document.
"""

import json
import os

from repro.common.serialize import (
    SerializationError,
    unwrap_document,
    wrap_document,
)
from repro.fuzz.generators import GENERATOR_VERSION
from repro.obs.status import write_atomic

#: Document kinds (the ``type`` key ``repro inspect`` sniffs).
CHECKPOINT_KIND = "fuzz-checkpoint"
FINDINGS_KIND = "fuzz-findings"

#: Findings-log schema version (the log is a plain document, not an
#: envelope payload, so it carries its own version key).
FINDINGS_VERSION = 1

#: Characters of the content hash used in filenames (the full hash
#: stays in the findings/checkpoint records).
_NAME_HASH = 16


class CorpusError(Exception):
    """The campaign directory is unusable or inconsistent."""


class Corpus:
    """One campaign directory (created on first use)."""

    def __init__(self, root):
        self.root = str(root)
        self.programs_dir = os.path.join(self.root, "programs")
        self.witnesses_dir = os.path.join(self.root, "witnesses")
        self.findings_path = os.path.join(self.root, "findings.json")
        self.checkpoint_path = os.path.join(self.root, "checkpoint.json")

    def ensure_dirs(self):
        os.makedirs(self.programs_dir, exist_ok=True)
        os.makedirs(self.witnesses_dir, exist_ok=True)

    # -- programs -----------------------------------------------------

    def program_path(self, content_hash, extension):
        return os.path.join(
            self.programs_dir, content_hash[:_NAME_HASH] + extension
        )

    def add_program(self, inp):
        """Store ``inp``'s source under its content hash.

        Returns ``(path, added)``: ``added`` is False on a dedup hit
        (the file already holds this exact program — same hash, same
        bytes — so nothing is written).
        """
        self.ensure_dirs()
        path = self.program_path(inp.content_hash, inp.extension)
        if os.path.exists(path):
            return path, False
        write_atomic(path, inp.source, raw=True)
        return path, True

    def program_count(self):
        try:
            return len(os.listdir(self.programs_dir))
        except OSError:
            return 0

    # -- witnesses ----------------------------------------------------

    def witness_path(self, content_hash):
        return os.path.join(
            self.witnesses_dir, content_hash[:_NAME_HASH] + ".json"
        )

    def save_witness(self, content_hash, record_dict):
        """Store one (already JSON-shaped) witness artifact."""
        self.ensure_dirs()
        path = self.witness_path(content_hash)
        write_atomic(path, record_dict)
        return path

    # -- findings log -------------------------------------------------

    def _fresh_findings(self, campaign=None):
        return {
            "type": FINDINGS_KIND,
            "version": FINDINGS_VERSION,
            "campaign": campaign or {},
            "findings": [],
        }

    def load_findings(self):
        """The findings log (a fresh empty one if none exists yet)."""
        try:
            with open(self.findings_path) as handle:
                doc = json.load(handle)
        except OSError:
            return self._fresh_findings()
        except ValueError as exc:
            raise CorpusError(
                "findings log {} is not valid JSON: {}".format(
                    self.findings_path, exc
                )
            )
        if doc.get("type") != FINDINGS_KIND:
            raise CorpusError(
                "{} is not a findings log (type={!r})".format(
                    self.findings_path, doc.get("type")
                )
            )
        if doc.get("version") != FINDINGS_VERSION:
            raise CorpusError(
                "unsupported findings log version {!r} (expected {})"
                .format(doc.get("version"), FINDINGS_VERSION)
            )
        return doc

    def append_finding(self, finding, campaign=None):
        """Append one finding record; returns the new total count."""
        self.ensure_dirs()
        doc = self.load_findings()
        if campaign:
            doc["campaign"] = campaign
        doc["findings"].append(finding)
        write_atomic(self.findings_path, doc)
        return len(doc["findings"])

    def write_findings_header(self, campaign):
        """Ensure the log exists with the campaign config recorded,
        even when the run finds nothing (an absent log and a clean log
        must be distinguishable)."""
        self.ensure_dirs()
        doc = self.load_findings()
        doc["campaign"] = campaign
        write_atomic(self.findings_path, doc)

    # -- checkpoint ---------------------------------------------------

    def save_checkpoint(self, state):
        """Atomically rewrite the resume point."""
        self.ensure_dirs()
        write_atomic(
            self.checkpoint_path, wrap_document(CHECKPOINT_KIND, state)
        )

    def load_checkpoint(self):
        """The checkpoint payload, or ``None`` when none exists.

        A malformed or foreign checkpoint raises — resuming over state
        the campaign cannot interpret must fail loudly, not quietly
        restart from zero (or worse, skip unfinished work).
        """
        try:
            with open(self.checkpoint_path) as handle:
                doc = json.load(handle)
        except OSError:
            return None
        except ValueError as exc:
            raise CorpusError(
                "checkpoint {} is not valid JSON: {}".format(
                    self.checkpoint_path, exc
                )
            )
        try:
            state = unwrap_document(doc, CHECKPOINT_KIND)
        except SerializationError as exc:
            raise CorpusError(str(exc))
        if state.get("generator_version") != GENERATOR_VERSION:
            raise CorpusError(
                "checkpoint was written by generator version {!r} "
                "(this build is {}); its content hashes cannot be "
                "reproduced — start a fresh corpus".format(
                    state.get("generator_version"), GENERATOR_VERSION
                )
            )
        return state
