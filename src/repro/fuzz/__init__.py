"""Differential fuzzing: a persistent, corpus-driven campaign.

The differential tests (:mod:`tests.integration.test_differential`)
already check the paper's compositionality claims on random programs —
but only forty examples at a time, regenerated per run, with nothing
kept. This package promotes those one-off tests into a standing
campaign:

* :mod:`repro.fuzz.generators` — seeded, library-level random program
  generators (same seed ⇒ byte-identical program), one per scenario
  family: sequential MiniC through the optimizing pipeline, two-thread
  CImp for the DRF ⇔ NPDRF and Lemma 9 lemmas, and lock-disciplined
  two-thread MiniC clients that must be race-free;
* :mod:`repro.fuzz.corpus` — the on-disk campaign state: a
  content-hash-deduplicated program corpus, a versioned JSON findings
  log (``repro inspect`` renders it), witness artifacts for every
  auto-minimized divergence, and an atomically-rewritten checkpoint
  that survives ``kill -9``;
* :mod:`repro.fuzz.campaign` — the driver: generates programs at
  scale, runs compile → per-pass validate → explore/drf on each across
  a forked worker pool, auto-minimizes any divergence or unexpected
  race into a replayable witness, and resumes from the checkpoint
  without re-running finished inputs.

``repro fuzz`` is the CLI entry point (see :mod:`repro.cli`).
"""

from repro.fuzz.generators import (
    DEFAULT_KINDS,
    FuzzInput,
    GeneratorError,
    KINDS,
    generate,
    plan,
)
from repro.fuzz.corpus import Corpus, CorpusError
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignStats,
    execute_input,
    run_campaign,
)

__all__ = [
    "DEFAULT_KINDS",
    "KINDS",
    "FuzzInput",
    "GeneratorError",
    "generate",
    "plan",
    "Corpus",
    "CorpusError",
    "CampaignConfig",
    "CampaignStats",
    "execute_input",
    "run_campaign",
]
