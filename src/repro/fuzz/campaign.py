"""The campaign driver: generate → execute → minimize → persist.

One campaign is ``count`` deterministic inputs (:func:`repro.fuzz.
generators.plan`) pushed through the *full* differential harness:

* ``minic-seq`` — compile through the optimizing pipeline, translation-
  validate every pass, then compare source-vs-target behaviour sets
  (the GCorrect conclusion);
* ``cimp-pair`` — check DRF ⇔ NPDRF agreement and, on DRF programs,
  preemptive ≈ non-preemptive behaviour equality (Lem. 9);
* ``minic-lock`` — race-check a lock-disciplined client linked against
  the lock object; any race is a finding. ``minic-lock-broken`` is the
  injected-divergence variant whose race is *expected* — and whose
  absence is itself a finding (``missed-race``), because a fuzzer
  whose alarm never rings is untested equipment.

Any divergence, unexpected race or harness crash becomes a **finding**
in the corpus's findings log; races are auto-minimized
(:func:`repro.semantics.replay.minimize_witness`, under the campaign's
round/wall-clock budget) into replayable witness artifacts that
``repro replay`` re-executes against the corpus program file.

Execution scales across a forked worker pool (``jobs > 1``): workers
regenerate their inputs deterministically from ``(kind, seed, index)``
— nothing but small task/result dicts crosses the queues — and only
the coordinator touches the corpus directory, so no file needs
cross-process locking. The checkpoint is rewritten atomically after
*every* absorbed result: ``kill -9`` at any instant loses at most the
in-flight inputs, and the next run resumes past everything finished.
Worker reaping lives in a ``finally`` so a Ctrl-C mid-campaign cannot
leak forked processes (the same contract as
:mod:`repro.semantics.parallel`).
"""

import multiprocessing
import os
import time
import traceback
from queue import Empty

from repro import obs
from repro.common.values import VInt
from repro.compiler import compile_minic
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.langs.cimp import CIMP, parse_module as parse_cimp
from repro.langs.minic import compile_unit, link_units
from repro.obs import ledger
from repro.obs import status as _status
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    equivalent,
    find_race,
    minimize_witness,
    program_behaviours,
    record_race,
)
from repro.simulation.validate import validate_compilation
from repro.tso import DEFAULT_LOCK_ADDR, lock_spec
from repro.fuzz.corpus import Corpus, CorpusError
from repro.fuzz.generators import (
    DEFAULT_KINDS,
    GENERATOR_VERSION,
    GeneratorError,
    KINDS,
    derive_seed,
    generate,
)

#: Address used for the shared CImp cell (mirrors the test helpers).
_CELL = 100

#: Behaviour samples kept on a divergence finding (full sets can be
#: huge; the witness of record is the corpus program, not the log).
_SAMPLE = 8

#: Coordinator receive timeout: worker-liveness check cadence.
_POOL_TIMEOUT = 1.0


class CampaignConfig:
    """Resolved knobs for one ``repro fuzz`` run."""

    __slots__ = ("seed", "count", "kinds", "out", "jobs", "max_states",
                 "max_events", "max_atomic_steps", "minimize_rounds",
                 "minimize_seconds", "duration", "fresh")

    def __init__(self, seed=0, count=50, kinds=DEFAULT_KINDS,
                 out="fuzz-corpus", jobs=1, max_states=60000,
                 max_events=24, max_atomic_steps=64, minimize_rounds=16,
                 minimize_seconds=5.0, duration=None, fresh=False):
        self.seed = int(seed)
        self.count = int(count)
        self.kinds = tuple(kinds)
        self.out = str(out)
        self.jobs = max(int(jobs), 1)
        self.max_states = int(max_states)
        self.max_events = int(max_events)
        self.max_atomic_steps = int(max_atomic_steps)
        self.minimize_rounds = minimize_rounds
        self.minimize_seconds = minimize_seconds
        self.duration = None if duration is None else float(duration)
        self.fresh = bool(fresh)
        for kind in self.kinds:
            if kind not in KINDS:
                raise GeneratorError(
                    "unknown generator kind {!r} (expected one of {})"
                    .format(kind, ", ".join(sorted(KINDS)))
                )

    def campaign_dict(self):
        """The identity block stamped into findings log + checkpoint."""
        return {
            "seed": self.seed,
            "count": self.count,
            "kinds": list(self.kinds),
            "generator_version": GENERATOR_VERSION,
        }


class CampaignStats:
    """What one :func:`run_campaign` call actually did."""

    __slots__ = ("executed", "skipped", "findings", "unexpected",
                 "dedup_hits", "programs_added", "elapsed_seconds",
                 "stopped")

    def __init__(self):
        self.executed = 0
        self.skipped = 0
        self.findings = 0
        self.unexpected = 0
        self.dedup_hits = 0
        self.programs_added = 0
        self.elapsed_seconds = 0.0
        self.stopped = "done"

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


# ----- program construction --------------------------------------------------


def _build_minic(inp):
    """Compile one generated MiniC unit: ``(pipeline result, genv)``."""
    extra = {"L": DEFAULT_LOCK_ADDR} if inp.lock else None
    modules, genvs, _ = link_units([compile_unit(inp.source)], extra)
    module, genv = modules[0], genvs[0]
    if inp.lock:
        module = module.with_forbidden({DEFAULT_LOCK_ADDR})
    return compile_minic(module, optimize=inp.optimize), genv


def _minic_program(stage, genv, entries, lock):
    decls = [ModuleDecl(stage.lang, genv, stage.module)]
    if lock:
        spec_mod, spec_ge = lock_spec()
        decls.append(ModuleDecl(CIMP, spec_ge, spec_mod))
    return Program(decls, list(entries))


def _cimp_program(inp):
    symbols = {"C": _CELL}
    module = parse_cimp(inp.source, symbols=symbols)
    ge = GlobalEnv(symbols, {_CELL: VInt(0)})
    return Program([ModuleDecl(CIMP, ge, module)], list(inp.entries))


# ----- per-input checks ------------------------------------------------------


def _finding(kind, inp, detail, expected=False, extra=None):
    rec = {
        "kind": kind,
        "expected": bool(expected),
        "detail": detail,
        "input": {
            "kind": inp.kind,
            "index": inp.index,
            "seed": inp.seed,
            "hash": inp.content_hash,
        },
    }
    if extra:
        rec.update(extra)
    return rec


def _check_minic_seq(inp, cfg):
    """Per-pass validation + source-vs-target behaviour equality."""
    result, genv = _build_minic(inp)
    mem = genv.memory()
    failed = [
        v.pass_name
        for v in validate_compilation(result, mem, mem.domain())
        if not v.ok
    ]
    if failed:
        return _finding(
            "validation", inp,
            "pass(es) failed translation validation: {}".format(
                ", ".join(failed)
            ),
        )

    def behs(stage):
        prog = _minic_program(stage, genv, inp.entries, inp.lock)
        return program_behaviours(
            GlobalContext(prog), PreemptiveSemantics(),
            max_states=cfg.max_states, max_events=cfg.max_events,
        )

    src = behs(result.source)
    tgt = behs(result.target)
    if not equivalent(src, tgt):
        return _finding(
            "divergence", inp,
            "source and x86 behaviour sets diverge after the "
            "optimizing pipeline",
            extra={
                "source_sample": sorted(map(repr, src))[:_SAMPLE],
                "target_sample": sorted(map(repr, tgt))[:_SAMPLE],
            },
        )
    return None


def _drf_verdict(prog, semantics, cfg):
    ctx = GlobalContext(prog)
    witness = find_race(
        ctx, semantics, max_states=cfg.max_states,
        max_atomic_steps=cfg.max_atomic_steps,
    )
    return witness is None


def _check_cimp_pair(inp, cfg):
    """DRF ⇔ NPDRF agreement; Lem. 9 equivalence on DRF programs."""
    prog = _cimp_program(inp)
    d = _drf_verdict(
        prog, PreemptiveSemantics(cfg.max_atomic_steps), cfg
    )
    n = _drf_verdict(
        prog, NonPreemptiveSemantics(cfg.max_atomic_steps), cfg
    )
    if d != n:
        return _finding(
            "lemma", inp,
            "DRF/NPDRF disagree: DRF={} NPDRF={}".format(d, n),
        )
    if not d:
        return None  # Lem. 9's premise fails: vacuous.
    pre = program_behaviours(
        GlobalContext(prog), PreemptiveSemantics(),
        max_states=cfg.max_states, max_events=cfg.max_events,
    )
    non = program_behaviours(
        GlobalContext(prog), NonPreemptiveSemantics(),
        max_states=cfg.max_states, max_events=cfg.max_events,
    )
    if not equivalent(pre, non):
        return _finding(
            "lemma", inp,
            "preemptive and non-preemptive behaviours diverge on a "
            "DRF program (Lem. 9)",
            extra={
                "preemptive_sample": sorted(map(repr, pre))[:_SAMPLE],
                "nonpreemptive_sample": sorted(map(repr, non))[:_SAMPLE],
            },
        )
    return None


def _check_minic_lock(inp, cfg, program_file):
    """Race-check a lock client; minimize any race into a witness."""
    result, genv = _build_minic(inp)
    prog = _minic_program(result.source, genv, inp.entries, True)
    ctx = GlobalContext(prog)
    semantics = PreemptiveSemantics(
        max_atomic_steps=cfg.max_atomic_steps
    )
    witness = find_race(ctx, semantics, max_states=cfg.max_states)
    if witness is None:
        if not inp.expect_drf:
            return _finding(
                "missed-race", inp,
                "injected broken lock client was reported race-free "
                "(the fuzzer's own alarm failed)",
            )
        return None
    record = record_race(
        witness,
        program={
            "file": program_file,
            "threads": ",".join(inp.entries),
            "lock": True,
            "optimize": inp.optimize,
        },
        meta={"max_atomic_steps": semantics.max_atomic_steps},
    )
    original_steps = len(record.schedule)
    record = minimize_witness(
        ctx, record,
        max_rounds=cfg.minimize_rounds,
        max_seconds=cfg.minimize_seconds,
    )
    return _finding(
        "race", inp,
        "data race in a lock-disciplined client"
        if inp.expect_drf
        else "injected race detected (broken lock discipline)",
        expected=not inp.expect_drf,
        extra={
            "witness_record": record.as_dict(),
            "schedule_steps": len(record.schedule),
            "original_steps": original_steps,
        },
    )


def execute_input(inp, cfg):
    """Run every check for one input; returns a JSON-able result dict.

    Harness crashes are captured as ``crash`` findings (always
    unexpected) instead of killing the campaign: a program that makes
    the toolchain raise is exactly the kind of input worth keeping.
    """
    corpus = Corpus(cfg.out)
    program_file = corpus.program_path(inp.content_hash, inp.extension)
    t0 = time.monotonic()
    try:
        if inp.kind == "minic-seq":
            finding = _check_minic_seq(inp, cfg)
        elif inp.kind == "cimp-pair":
            finding = _check_cimp_pair(inp, cfg)
        elif inp.kind in ("minic-lock", "minic-lock-broken"):
            finding = _check_minic_lock(inp, cfg, program_file)
        else:
            raise GeneratorError(
                "no harness for generator kind {!r}".format(inp.kind)
            )
    except Exception:
        finding = _finding(
            "crash", inp, traceback.format_exc(limit=20)
        )
    return {
        "index": inp.index,
        "kind": inp.kind,
        "seed": inp.seed,
        "hash": inp.content_hash,
        "elapsed_seconds": round(time.monotonic() - t0, 6),
        "finding": finding,
    }


# ----- the worker pool -------------------------------------------------------


def _pool_worker(wid, cfg, status_path, status_interval, task_q,
                 result_q):
    """One forked executor: regenerate, execute, ship the result.

    Fork-inherited obs/heartbeat state belongs to the parent: reset it,
    then (when the parent has a heartbeat) write this shard's own
    ``FILE.w<wid>`` snapshot so a stuck worker is visible from outside.
    """
    obs.reset()
    _status.reset()
    if status_path:
        _status.configure(
            _status.shard_path(status_path, wid),
            interval=status_interval, wid=wid,
        )
    hb = _status.writer
    if hb is not None:
        hb.force(states=0, frontier=0, phase="fuzz")
    executed = 0
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            index, kind, seed = task
            inp = generate(kind, seed, index=index)
            result_q.put(execute_input(inp, cfg))
            executed += 1
            if hb is not None:
                hb.beat(states=executed, frontier=0)
    except (KeyboardInterrupt, EOFError, OSError):
        pass
    finally:
        _status.finalize()
        try:
            result_q.put(("bye", wid))
        except (OSError, ValueError):
            pass
        task_q.cancel_join_thread()


def _run_pool(cfg, pending, admit, absorb, deadline, hb):
    """Coordinator for ``jobs`` forked executors.

    Tasks are fed incrementally (at most ``2 * jobs`` outstanding) so a
    ``--duration`` budget stops admitting new work promptly; the
    checkpoint marks only *absorbed* results, so anything in flight at
    an interrupt simply reruns next time. All worker reaping happens in
    the ``finally``: a KeyboardInterrupt out of the wait loop must not
    leak forked processes.
    """
    mp_ctx = multiprocessing.get_context("fork")
    task_q = mp_ctx.Queue()
    result_q = mp_ctx.Queue()
    status_path = hb.path if hb is not None else None
    status_interval = hb.interval if hb is not None else None
    procs = []
    for wid in range(cfg.jobs):
        p = mp_ctx.Process(
            target=_pool_worker,
            args=(wid, cfg, status_path, status_interval, task_q,
                  result_q),
            daemon=True,
        )
        p.start()
        procs.append(p)

    stopped = "done"
    queue_it = iter(pending)
    inflight = 0
    exhausted = False

    def over_deadline():
        return deadline is not None and time.monotonic() >= deadline

    def feed():
        nonlocal inflight, exhausted, stopped
        while not exhausted and inflight < cfg.jobs * 2:
            if over_deadline():
                stopped = "duration"
                exhausted = True
                break
            try:
                index = next(queue_it)
            except StopIteration:
                exhausted = True
                break
            inp = admit(index)
            task_q.put((index, inp.kind, inp.seed))
            inflight += 1

    def merge_beat():
        if hb is not None and hb.due():
            _status.merge_shards(
                hb, cfg.jobs,
                alive={
                    wid: p.is_alive() for wid, p in enumerate(procs)
                },
                phase="fuzz",
            )

    try:
        feed()
        while inflight > 0:
            merge_beat()
            try:
                msg = result_q.get(timeout=_POOL_TIMEOUT)
            except Empty:
                if over_deadline():
                    stopped = "duration"
                    exhausted = True
                dead = [
                    wid for wid, p in enumerate(procs)
                    if not p.is_alive()
                ]
                if dead:
                    # A dead executor's in-flight task will never come
                    # back; fail loudly — the checkpoint preserves all
                    # absorbed progress for the resume.
                    raise RuntimeError(
                        "fuzz worker(s) {} died mid-campaign".format(
                            dead
                        )
                    )
                continue
            if isinstance(msg, tuple):
                continue  # a stray early bye
            inflight -= 1
            absorb(msg)
            feed()
        if not exhausted:
            feed()
    finally:
        # Reap unconditionally: sentinels first (a healthy worker
        # exits its loop), then bounded joins, then terminate anything
        # still alive — Ctrl-C here must not orphan forked children.
        for _ in procs:
            try:
                task_q.put(None)
            except (OSError, ValueError):
                pass
        for p in procs:
            p.join(timeout=5)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
        task_q.cancel_join_thread()
        task_q.close()
        result_q.cancel_join_thread()
        result_q.close()
        if hb is not None:
            _status.merge_shards(
                hb, cfg.jobs,
                alive={wid: False for wid in range(cfg.jobs)},
                phase="fuzz",
            )
    return stopped


# ----- the campaign ----------------------------------------------------------


def run_campaign(cfg):
    """Run (or resume) one campaign; returns :class:`CampaignStats`.

    Only this coordinator writes to the corpus directory. After every
    absorbed result the checkpoint is atomically rewritten, so the
    campaign survives ``kill -9`` losing at most in-flight inputs.
    """
    corpus = Corpus(cfg.out)
    corpus.ensure_dirs()
    campaign = cfg.campaign_dict()
    done = {}
    if cfg.fresh:
        try:
            os.remove(corpus.checkpoint_path)
        except OSError:
            pass
    else:
        state = corpus.load_checkpoint()
        if state is not None:
            if (
                state.get("seed") != cfg.seed
                or list(state.get("kinds") or ()) != list(cfg.kinds)
            ):
                raise CorpusError(
                    "checkpoint at {} belongs to a different campaign "
                    "(seed={!r}, kinds={!r}); pass --fresh to discard "
                    "it or point --out elsewhere".format(
                        corpus.checkpoint_path,
                        state.get("seed"), state.get("kinds"),
                    )
                )
            done = {
                int(k): v for k, v in (state.get("done") or {}).items()
            }
    corpus.write_findings_header(campaign)
    ledger.set_config(
        seed=cfg.seed, count=cfg.count, kinds=list(cfg.kinds),
        jobs=cfg.jobs, out=cfg.out, duration=cfg.duration,
    )

    stats = CampaignStats()
    pending = [i for i in range(cfg.count) if i not in done]
    stats.skipped = cfg.count - len(pending)
    deadline = (
        None
        if cfg.duration is None
        else time.monotonic() + cfg.duration
    )
    hb = _status.writer
    if hb is not None:
        hb.update(phase="fuzz", budget=cfg.count, jobs=cfg.jobs)
        hb.force(states=len(done), frontier=len(pending))

    def save_checkpoint():
        corpus.save_checkpoint({
            "generator_version": GENERATOR_VERSION,
            "seed": cfg.seed,
            "count": cfg.count,
            "kinds": list(cfg.kinds),
            "done": {str(i): h for i, h in sorted(done.items())},
        })

    def admit(index):
        """Generate input ``index`` and store its program (deduped)."""
        kind = cfg.kinds[index % len(cfg.kinds)]
        inp = generate(kind, derive_seed(cfg.seed, index), index=index)
        _path, added = corpus.add_program(inp)
        if added:
            stats.programs_added += 1
        else:
            stats.dedup_hits += 1
        return inp

    def absorb(result):
        """Persist one finished input: witness, finding, checkpoint."""
        done[result["index"]] = result["hash"]
        stats.executed += 1
        obs.inc("fuzz.inputs")
        finding = result.get("finding")
        if finding:
            stats.findings += 1
            obs.inc("fuzz.findings")
            if finding.get("kind") == "crash":
                obs.inc("fuzz.crashes")
            if not finding.get("expected"):
                stats.unexpected += 1
                obs.inc("fuzz.unexpected")
            witness_rec = finding.pop("witness_record", None)
            if witness_rec is not None:
                finding["witness"] = corpus.save_witness(
                    result["hash"], witness_rec
                )
            corpus.append_finding(finding, campaign=campaign)
        save_checkpoint()

    t0 = time.monotonic()
    with obs.span(
        "fuzz.campaign", count=cfg.count, jobs=cfg.jobs,
        pending=len(pending),
    ):
        if cfg.jobs <= 1 or not _fork_available():
            for index in pending:
                if deadline is not None and \
                        time.monotonic() >= deadline:
                    stats.stopped = "duration"
                    break
                inp = admit(index)
                absorb(execute_input(inp, cfg))
                if hb is not None:
                    hb.beat(
                        states=len(done),
                        frontier=cfg.count - len(done),
                    )
        else:
            stats.stopped = _run_pool(
                cfg, pending, admit, absorb, deadline, hb
            )
    stats.elapsed_seconds = round(time.monotonic() - t0, 6)
    save_checkpoint()
    obs.inc("fuzz.dedup_hits", stats.dedup_hits)
    ledger.note(
        verdict=(
            "fuzz-clean" if stats.unexpected == 0 else "fuzz-findings"
        ),
        executed=stats.executed,
        skipped=stats.skipped,
        findings=stats.findings,
        unexpected=stats.unexpected,
        stopped=stats.stopped,
    )
    if hb is not None:
        hb.force(
            states=len(done), frontier=cfg.count - len(done),
            phase="fuzz",
        )
    return stats


def _fork_available():
    return "fork" in multiprocessing.get_all_start_methods()
