"""``repro profile``: decompose where a run's wall-clock went.

The inspector (:mod:`repro.obs.explain`) answers "what happened"; this
module answers "what did it *cost*". It reads the artifacts a metered
run leaves behind —

* the main ``--trace`` JSONL file,
* the per-worker sibling files a parallel run writes next to it
  (``<trace>.w0``, ``<trace>.w1``, ...; see
  :mod:`repro.semantics.parallel`),
* a metrics snapshot, from ``--metrics-out`` JSON or the ``metrics``
  record appended to the trace on shutdown —

and renders four sections:

1. **Per-shard phase breakdown** — for every worker, the wall-clock
   split into compile / expand / encode / decode / idle (from the
   ``parallel.worker.phases`` event each worker appends to its own
   trace), with a coverage column showing how much of the worker's
   wall the five phases explain, plus the coordinator's merge cost.
2. **Top spans by self-time** — span durations minus their children's,
   aggregated by name across all trace files, so inclusive parents
   (``explore``, ``race.find``) don't drown the leaves that actually
   burn the time.
3. **Per-shard utilization timeline** — each worker's run bucketed
   into a fixed-width bar, idle intervals (the blocking
   ``parallel.worker.idle`` spans) rendered dark, so convoy patterns
   and stragglers are visible at a glance.
4. **Wire-cost table** — bytes shipped per direction, batch-size /
   per-world-size histograms and the send-memo hit rate, read from
   the *generically merged* metrics snapshot (the coordinator absorbs
   every worker's full registry; nothing here is hand-picked), ending
   with the expansion-vs-transport verdict that answers "why is
   ``--jobs 2`` slower".
5. **Heap** — the interning/heap census when the run collected one
   (``--heap-profile``; see :mod:`repro.obs.heap`): the explored
   graph's bytes-unique vs bytes-if-copied sharing factor, the
   per-type byte breakdown, the per-intern-table occupancy/hit-rate
   rows, and any tracemalloc phase gauges.

Rendering is pure string-building over the artifacts; nothing is
re-executed. ``--metrics-format prom`` short-circuits the report and
emits the snapshot as Prometheus text exposition instead
(:mod:`repro.obs.prom`) — the scrape format the future ``repro
serve`` dashboard consumes.
"""

import glob
import json
import os

from repro.obs.trace import read_trace

#: Character ramp for the utilization timeline (busy fraction).
_RAMP = ("·", "░", "▒", "▓", "█")

#: Buckets in a utilization bar.
_TIMELINE_WIDTH = 48

#: The worker-side phases, in display order. ``compile`` is the
#: up-front closure compilation of every module (see
#: :mod:`repro.lang.closure`); old traces without it read as zero.
_PHASES = ("compile", "expand", "encode", "decode", "idle")


def worker_trace_paths(trace_path):
    """The per-worker sibling files of a main trace, sorted by wid."""
    paths = glob.glob(glob.escape(str(trace_path)) + ".w*")

    def _wid(path):
        suffix = path.rsplit(".w", 1)[-1]
        return int(suffix) if suffix.isdigit() else -1

    return sorted((p for p in paths if _wid(p) >= 0), key=_wid)


def load_profile(trace_path, metrics_path=None):
    """Gather everything the report renders into one plain dict."""
    main_records = read_trace(trace_path)
    workers = {}
    for path in worker_trace_paths(trace_path):
        records = read_trace(path)
        wid = None
        for rec in records:
            if rec.get("type") == "meta":
                wid = (rec.get("attrs") or {}).get("wid")
                break
        if wid is None:
            wid = int(path.rsplit(".w", 1)[-1])
        workers[wid] = records
    metrics = None
    if metrics_path:
        with open(metrics_path) as handle:
            metrics = json.load(handle)
    else:
        for rec in main_records:
            if rec.get("type") == "metrics":
                metrics = rec.get("data")
    return {
        "trace_path": str(trace_path),
        "main": main_records,
        "workers": workers,
        "metrics": metrics,
    }


# ----- per-shard phases -----------------------------------------------------


def _phase_events(profile):
    """``{wid: attrs}`` from each worker's phases event."""
    out = {}
    for wid, records in sorted(profile["workers"].items()):
        for rec in records:
            if (
                rec.get("type") == "event"
                and rec.get("name") == "parallel.worker.phases"
            ):
                out[wid] = rec.get("attrs") or {}
    return out


def _merge_seconds(profile):
    """Coordinator merge cost: snapshot gauge, else the merge span."""
    metrics = profile["metrics"]
    if metrics:
        value = metrics.get("gauges", {}).get("parallel.merge_seconds")
        if value is not None:
            return value
    for rec in profile["main"]:
        if (
            rec.get("type") == "span"
            and rec.get("name") == "parallel.merge"
        ):
            return rec.get("dur", 0.0)
    return None


def phase_rows(profile):
    """``(rows, totals)`` for the per-shard phase table.

    Each row: wid, wall, the four phase seconds, covered seconds and
    coverage fraction. ``totals`` sums the columns across shards.
    """
    rows = []
    totals = {k: 0.0 for k in _PHASES}
    totals["wall"] = 0.0
    totals["covered"] = 0.0
    for wid, attrs in sorted(_phase_events(profile).items()):
        wall = attrs.get("wall_seconds", 0.0) or 0.0
        phases = {
            k: attrs.get(k + "_seconds", 0.0) or 0.0 for k in _PHASES
        }
        covered = sum(phases.values())
        rows.append(
            {
                "wid": wid,
                "wall": wall,
                "covered": covered,
                "coverage": (covered / wall) if wall > 0 else 0.0,
                **phases,
            }
        )
        totals["wall"] += wall
        totals["covered"] += covered
        for k in _PHASES:
            totals[k] += phases[k]
    return rows, totals


def _aggregate_phase_rows(metrics):
    """Fallback phase table from the merged snapshot histograms when
    per-worker traces are absent (metrics-only runs)."""
    hists = metrics.get("histograms", {}) if metrics else {}
    rows = []
    for key in ("wall",) + _PHASES:
        summ = hists.get("parallel.worker.{}_seconds".format(key))
        if summ and summ.get("count"):
            rows.append(
                (
                    key,
                    summ["count"],
                    summ.get("min"),
                    summ.get("mean"),
                    summ.get("max"),
                    (summ.get("mean") or 0.0) * summ["count"],
                )
            )
    return rows


# ----- self-time ------------------------------------------------------------


def self_times(profile):
    """Aggregate span self-time (duration minus children) by name
    across the main and all worker traces."""
    agg = {}
    for records in [profile["main"]] + list(
        profile["workers"].values()
    ):
        spans = [r for r in records if r.get("type") == "span"]
        child_total = {}
        for rec in spans:
            parent = rec.get("parent")
            if parent is not None:
                child_total[parent] = child_total.get(
                    parent, 0.0
                ) + (rec.get("dur", 0.0) or 0.0)
        for rec in spans:
            dur = rec.get("dur", 0.0) or 0.0
            self_dur = max(
                0.0, dur - child_total.get(rec.get("sid"), 0.0)
            )
            entry = agg.setdefault(
                rec.get("name", "?"), [0, 0.0, 0.0]
            )
            entry[0] += 1
            entry[1] += self_dur
            entry[2] += dur
    return agg


# ----- utilization timeline -------------------------------------------------


def utilization(profile, width=_TIMELINE_WIDTH):
    """``[(wid, bar, busy_fraction)]`` per worker trace.

    The bar buckets the worker's run span; each bucket's busy
    fraction is one minus the overlap of the blocking-idle spans.
    """
    out = []
    for wid, records in sorted(profile["workers"].items()):
        wall = None
        for rec in records:
            if (
                rec.get("type") == "span"
                and rec.get("name") == "parallel.worker.run"
            ):
                wall = (rec.get("ts", 0.0), rec.get("dur", 0.0) or 0.0)
        if wall is None or wall[1] <= 0:
            continue
        t0, dur = wall
        idle = [
            (rec.get("ts", 0.0), rec.get("dur", 0.0) or 0.0)
            for rec in records
            if rec.get("type") == "span"
            and rec.get("name") == "parallel.worker.idle"
        ]
        step = dur / width
        bar = []
        idle_total = 0.0
        for i in range(width):
            lo = t0 + i * step
            hi = lo + step
            overlap = 0.0
            for its, idur in idle:
                overlap += max(
                    0.0, min(hi, its + idur) - max(lo, its)
                )
            busy = 1.0 - (overlap / step if step > 0 else 0.0)
            busy = max(0.0, min(1.0, busy))
            bar.append(_RAMP[min(len(_RAMP) - 1, int(busy * len(_RAMP)))])
        for its, idur in idle:
            idle_total += max(
                0.0, min(t0 + dur, its + idur) - max(t0, its)
            )
        out.append(
            (wid, "".join(bar), max(0.0, 1.0 - idle_total / dur))
        )
    return out


# ----- wire cost ------------------------------------------------------------

_WIRE_COUNTERS = (
    ("parallel.wire.bytes_out", "cross-shard world bytes sent"),
    ("parallel.wire.bytes_in", "cross-shard world bytes received"),
    ("parallel.wire.rec_bytes", "expansion-record bytes to coordinator"),
    ("parallel.batches", "batches (incl. coordinator seeds)"),
    ("parallel.cross_edges", "cross-shard successor worlds shipped"),
    ("parallel.wire.delta_hits", "memories shipped as base-cache deltas"),
    ("parallel.wire.full_sends", "memories shipped in full (new base)"),
    ("parallel.wire.base_registrations", "memory bases registered"),
    ("parallel.wire.channel_resets", "channel epoch resets (state bound)"),
    ("serialize.encode.bytes", "total bytes encoded (all envelopes)"),
    ("serialize.decode.bytes", "total bytes decoded (all envelopes)"),
)

_WIRE_HISTOGRAMS = (
    ("parallel.wire.batch_worlds", "worlds per batch"),
    ("parallel.wire.batch_bytes", "bytes per batch"),
    ("parallel.wire.world_bytes", "bytes per shipped world"),
    ("serialize.encode.memo_entries", "pickle-memo entries per batch"),
)


def wire_rows(metrics):
    """Scalar and histogram rows for the wire-cost tables."""
    counters = metrics.get("counters", {}) if metrics else {}
    hists = metrics.get("histograms", {}) if metrics else {}
    scalars = [
        (name, desc, counters[name])
        for name, desc in _WIRE_COUNTERS
        if name in counters
    ]
    hits = counters.get("parallel.wire.memo_hits")
    sends = counters.get("parallel.wire.memo_sends")
    if hits is not None or sends is not None:
        hits = hits or 0
        sends = sends or 0
        rate = hits / (hits + sends) if (hits + sends) else 0.0
        scalars.append(
            (
                "parallel.wire.memo_hit_rate",
                "send-memo hit rate (resends avoided)",
                "{:.1%} ({}/{})".format(rate, hits, hits + sends),
            )
        )
    deltas = counters.get("parallel.wire.delta_hits")
    fulls = counters.get("parallel.wire.full_sends")
    if deltas is not None or fulls is not None:
        deltas = deltas or 0
        fulls = fulls or 0
        total = deltas + fulls
        rate = deltas / total if total else 0.0
        scalars.append(
            (
                "parallel.wire.delta_rate",
                "memory sends avoided as deltas",
                "{:.1%} ({}/{})".format(rate, deltas, total),
            )
        )
    hist_rows = [
        (name, desc, hists[name])
        for name, desc in _WIRE_HISTOGRAMS
        if name in hists and hists[name].get("count")
    ]
    return scalars, hist_rows


# ----- heap / interning census ---------------------------------------------


def _gauge_group(gauges, prefix):
    """``{name: {field: value}}`` for dotted gauges under ``prefix``."""
    out = {}
    for key, value in gauges.items():
        if not key.startswith(prefix):
            continue
        name, _, field = key[len(prefix):].rpartition(".")
        if name:
            out.setdefault(name, {})[field] = value
    return out


def heap_rows(metrics):
    """``(graph, per_type, tables, tracemalloc)`` census groups from
    the snapshot's ``heap.*`` / ``intern.table.*`` gauges (empty dicts
    when the run didn't census — the section is simply omitted)."""
    gauges = metrics.get("gauges", {}) if metrics else {}
    counters = metrics.get("counters", {}) if metrics else {}
    graph = {
        key[len("heap.graph."):]: value
        for key, value in gauges.items()
        if key.startswith("heap.graph.")
    }
    per_type = _gauge_group(gauges, "heap.type.")
    tables = _gauge_group(gauges, "intern.table.")
    for name, entry in _gauge_group(counters, "intern.table.").items():
        tables.setdefault(name, {}).update(entry)
    tracemalloc = {
        key[len("heap.tracemalloc."):]: value
        for key, value in gauges.items()
        if key.startswith("heap.tracemalloc.")
    }
    return graph, per_type, tables, tracemalloc


def _bytes(value):
    if value is None:
        return "-"
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return (
                "{:,.0f} {}".format(value, unit)
                if unit == "B"
                else "{:,.1f} {}".format(value, unit)
            )
        value /= 1024.0


# ----- rendering ------------------------------------------------------------


def _sec(value):
    return "-" if value is None else "{:.4f}".format(value)


def _num(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.1f}".format(value)
    return str(value)


def render_profile(profile, top=12):
    """The full plain-text profile report."""
    from repro.framework.report import format_table

    lines = ["profile: {}".format(profile["trace_path"])]
    metrics = profile["metrics"]

    rows, totals = phase_rows(profile)
    merge = _merge_seconds(profile)
    if rows:
        lines.append("")
        lines.append("per-shard phase breakdown (seconds):")
        table = [
            ("w{}".format(r["wid"]), _sec(r["wall"]))
            + tuple(_sec(r[k]) for k in _PHASES)
            + ("{:.1%}".format(r["coverage"]),)
            for r in rows
        ]
        table.append(
            ("total", _sec(totals["wall"]))
            + tuple(_sec(totals[k]) for k in _PHASES)
            + (
                "{:.1%}".format(
                    totals["covered"] / totals["wall"]
                    if totals["wall"] > 0
                    else 0.0
                ),
            )
        )
        lines.append(
            format_table(
                table,
                headers=("Shard", "Wall")
                + tuple(k.capitalize() for k in _PHASES)
                + ("Covered",),
            )
        )
        if merge is not None:
            lines.append(
                "coordinator merge (decode + canonical BFS): "
                "{} s".format(_sec(merge))
            )
    elif metrics:
        agg = _aggregate_phase_rows(metrics)
        if agg:
            lines.append("")
            lines.append(
                "per-shard phases (aggregate over {} worker(s); run "
                "with --trace for per-shard rows):".format(
                    agg[0][1]
                )
            )
            lines.append(
                format_table(
                    [
                        (
                            name,
                            _sec(vmin),
                            _sec(mean),
                            _sec(vmax),
                            _sec(total),
                        )
                        for name, _n, vmin, mean, vmax, total in agg
                    ],
                    headers=("Phase", "Min", "Mean", "Max", "Total"),
                )
            )

    bars = utilization(profile)
    if bars:
        lines.append("")
        lines.append(
            "per-shard utilization ({} buckets over each worker's "
            "run; dark = busy):".format(_TIMELINE_WIDTH)
        )
        for wid, bar, busy in bars:
            lines.append(
                "  w{} |{}| busy {:.1%}".format(wid, bar, busy)
            )

    agg = self_times(profile)
    if agg:
        lines.append("")
        lines.append("top spans by self-time:")
        ranked = sorted(
            agg.items(), key=lambda kv: kv[1][1], reverse=True
        )[:top]
        lines.append(
            format_table(
                [
                    (
                        name,
                        entry[0],
                        "{:.6f}".format(entry[1]),
                        "{:.6f}".format(entry[2]),
                    )
                    for name, entry in ranked
                ],
                headers=("Span", "Count", "Self s", "Total s"),
            )
        )

    if metrics:
        scalars, hist_rows = wire_rows(metrics)
        if scalars or hist_rows:
            lines.append("")
            lines.append("wire cost (from the merged metrics snapshot):")
        if scalars:
            lines.append(
                format_table(
                    [
                        (name, desc, _num(value))
                        for name, desc, value in scalars
                    ],
                    headers=("Metric", "What", "Value"),
                )
            )
        if hist_rows:
            lines.append("")
            lines.append(
                format_table(
                    [
                        (
                            name,
                            summ["count"],
                            _num(summ.get("min")),
                            _num(summ.get("mean")),
                            _num(summ.get("p95")),
                            _num(summ.get("max")),
                        )
                        for name, _desc, summ in hist_rows
                    ],
                    headers=(
                        "Histogram", "Count", "Min", "Mean", "P95",
                        "Max",
                    ),
                )
            )

    if metrics:
        graph_g, type_g, table_g, tm_g = heap_rows(metrics)
        if graph_g or table_g:
            lines.append("")
            lines.append(
                "heap (interning census; graph deep-size needs "
                "--heap-profile):"
            )
        if graph_g:
            lines.append(
                "  graph: {:,} world(s), {:,} object(s); {} unique "
                "vs {} if-copied -> sharing factor {:.2f}x "
                "({} B/world unique)".format(
                    int(graph_g.get("worlds", 0)),
                    int(graph_g.get("objects", 0)),
                    _bytes(graph_g.get("bytes_unique")),
                    _bytes(graph_g.get("bytes_if_copied")),
                    graph_g.get("sharing_factor", 0.0) or 0.0,
                    _num(graph_g.get("bytes_per_world_unique")),
                )
            )
        if type_g:
            ranked = sorted(
                type_g.items(),
                key=lambda kv: -(kv[1].get("bytes") or 0),
            )
            lines.append(
                format_table(
                    [
                        (
                            name,
                            _num(entry.get("count")),
                            _bytes(entry.get("bytes")),
                        )
                        for name, entry in ranked
                    ],
                    headers=("Type", "Objects", "Unique bytes"),
                )
            )
        if table_g:
            table = []
            for name, entry in sorted(table_g.items()):
                hits = entry.get("hits")
                misses = entry.get("misses")
                if entry.get("hit_rate") is not None:
                    rate = "{:.1%}".format(entry["hit_rate"])
                elif hits is not None and misses is not None:
                    total = hits + misses
                    rate = (
                        "{:.1%}".format(hits / total) if total else "-"
                    )
                else:
                    rate = "-"
                table.append(
                    (
                        name,
                        _num(entry.get("size")),
                        _num(entry.get("peak_size")),
                        _num(entry.get("clears")),
                        rate,
                        _num(entry.get("collisions_estimate")),
                    )
                )
            lines.append("")
            lines.append(
                format_table(
                    table,
                    headers=(
                        "Intern table", "Size", "Peak", "Clears",
                        "Hit rate", "Collisions (est)",
                    ),
                )
            )
        if tm_g:
            lines.append("")
            lines.append(
                "tracemalloc: "
                + "  ".join(
                    "{}={}".format(name, _bytes(value))
                    for name, value in sorted(tm_g.items())
                )
            )

    verdict = _verdict(rows, totals, merge, metrics)
    if verdict:
        lines.append("")
        lines.append(verdict)
    return "\n".join(lines)


def _verdict(rows, totals, merge, metrics):
    """One sentence attributing the run's cost: expansion vs wire."""
    if not rows:
        return None
    transport = totals["encode"] + totals["decode"] + (merge or 0.0)
    expand = totals["expand"]
    idle = totals["idle"]
    parts = [
        "verdict: {:.3f} s expanding vs {:.3f} s on the wire "
        "(encode+decode+merge) and {:.3f} s idle across {} "
        "shard(s)".format(expand, transport, idle, len(rows))
    ]
    if expand > 0 and transport + idle > expand:
        parts.append(
            "— transport and idle dominate: this run paid more to "
            "ship and wait than to explore (see ROADMAP: real-core "
            "speedup; on one core, idle is the sibling's CPU time)"
        )
    counters = metrics.get("counters", {}) if metrics else {}
    deltas = counters.get("parallel.wire.delta_hits")
    fulls = counters.get("parallel.wire.full_sends")
    if deltas or fulls:
        total = (deltas or 0) + (fulls or 0)
        parts.append(
            "— delta transport: {:.1%} of memory sends crossed as "
            "base-cache deltas ({} delta / {} full), {} channel "
            "reset(s)".format(
                (deltas or 0) / total if total else 0.0,
                deltas or 0,
                fulls or 0,
                counters.get("parallel.wire.channel_resets", 0),
            )
        )
    return " ".join(parts)


def profile_path(trace_path, metrics_path=None, top=12):
    """Load + render: the ``repro profile`` entry point."""
    if not os.path.exists(trace_path):
        raise FileNotFoundError(trace_path)
    return render_profile(
        load_profile(trace_path, metrics_path), top=top
    )
