"""Prometheus text exposition of a metrics snapshot or dump.

``render_prometheus`` turns the output of either
:meth:`~repro.obs.metrics.MetricsRegistry.dump` (exact: raw histogram
reservoirs) or :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
(summary-only: count/min/max/mean/p50/p95) into the `text exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
a Prometheus server scrapes:

* counters become ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* gauges become ``<ns>_<name>`` with ``# TYPE ... gauge``;
* histograms become the conventional ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` triple.  With raw reservoirs the cumulative
  bucket counts are computed over a deterministic 1–2–5 ladder
  spanning the observed range (scaled to the true count when the
  reservoir was decimated); with only a summary the buckets degrade
  gracefully to the three honest cut points a summary supports
  (``le=p50`` ≈ half the count, ``le=p95``, ``le=max``).

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(every other character becomes ``_``) and prefixed with the
``repro_`` namespace, so ``span.explore.seconds`` is scraped as
``repro_span_explore_seconds``. This module is pure formatting — the
``repro profile --metrics-format prom`` reader and the future ``repro
serve`` scrape endpoint both feed it snapshots they already hold.
"""

import re

#: Default namespace every exported metric name is prefixed with.
NAMESPACE = "repro"

#: Prefix -> human description for known metric families.  Matched
#: longest-prefix-first so ``intern.table.`` beats ``intern.``.  The
#: HELP line for an unknown name falls back to the generic
#: ``repro <kind> <name>`` form, which keeps the exporter total:
#: new instrumentation never needs to touch this table to scrape.
HELP_PREFIXES = (
    ("heap.graph.", "sharing-aware state-graph deep-size census"),
    ("heap.type.", "per-type share of unique state-graph bytes"),
    ("heap.tracemalloc.", "tracemalloc snapshot (opt-in --heap-profile)"),
    ("intern.table.", "per-intern-table census (hash-consing)"),
    ("intern.", "aggregate intern-table activity"),
    ("explore.", "state-space exploration progress"),
    ("por.", "partial-order-reduction effectiveness"),
    ("wire.", "cross-shard transport cost"),
    ("span.", "wall-clock span timing"),
)


def help_text(name, kind):
    """The ``# HELP`` description for metric ``name`` of ``kind``."""
    for prefix, desc in HELP_PREFIXES:
        if name.startswith(prefix):
            return "{} ({})".format(desc, name)
    return "repro {} {}".format(kind, name)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Mantissas of the deterministic log bucket ladder.
_LADDER = (1.0, 2.0, 5.0)


def sanitize_name(name, namespace=NAMESPACE):
    """A Prometheus-legal metric name for ``name``.

    Illegal characters collapse to ``_``; a leading digit gains a
    ``_`` guard; the namespace is prepended with a ``_`` separator.
    """
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    if namespace:
        return "{}_{}".format(_NAME_RE.sub("_", namespace), clean)
    return clean


def _fmt(value):
    """Prometheus sample values: integers bare, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) and (
        abs(value) < 1e15
    ):
        return str(int(value))
    return repr(float(value))


def bucket_bounds(vmin, vmax):
    """The 1–2–5 ladder covering ``[vmin, vmax]``.

    Deterministic (no data-dependent jitter beyond the range itself),
    so repeated exports of the same run expose identical bucket
    layouts — which is what makes scraped series comparable.
    """
    if vmin is None or vmax is None:
        return []
    if vmax <= 0:
        return [0.0]
    # Start one decade below the smallest positive observation.
    low = vmin if vmin > 0 else vmax / 1000.0
    exp = -18
    while 10.0 ** (exp + 1) <= low:
        exp += 1
    bounds = []
    while True:
        for m in _LADDER:
            bound = m * (10.0 ** exp)
            bounds.append(bound)
            if bound >= vmax:
                return bounds
        exp += 1
        if exp > 18:  # overflow guard; vmax is finite
            return bounds


def _histogram_lines(name, data):
    """The ``_bucket``/``_sum``/``_count`` block for one histogram.

    ``data`` is either a dump entry (has ``values``/``total``) or a
    snapshot summary (has ``mean``/``p50``/``p95``).
    """
    count = data.get("count", 0)
    lines = []
    if "values" in data:
        values = sorted(data["values"])
        total = data.get("total", 0.0)
        # The reservoir may be a decimated sample of the stream;
        # scale each retained point's weight so the buckets still
        # sum to the true count.
        weight = (count / len(values)) if values else 0.0
        cumulative = 0.0
        idx = 0
        for bound in bucket_bounds(data.get("min"), data.get("max")):
            while idx < len(values) and values[idx] <= bound:
                idx += 1
                cumulative += weight
            lines.append(
                '{}_bucket{{le="{}"}} {}'.format(
                    name, _fmt(bound), _fmt(round(cumulative))
                )
            )
    else:
        total = (data.get("mean") or 0.0) * count
        seen = set()
        for bound, share in (
            (data.get("p50"), 0.5),
            (data.get("p95"), 0.95),
            (data.get("max"), 1.0),
        ):
            if bound is None or bound in seen:
                continue
            seen.add(bound)
            lines.append(
                '{}_bucket{{le="{}"}} {}'.format(
                    name, _fmt(bound), _fmt(round(count * share))
                )
            )
    lines.append('{}_bucket{{le="+Inf"}} {}'.format(name, _fmt(count)))
    lines.append("{}_sum {}".format(name, _fmt(total)))
    lines.append("{}_count {}".format(name, _fmt(count)))
    return lines


def render_prometheus(snapshot, namespace=NAMESPACE):
    """The whole snapshot/dump as Prometheus text exposition."""
    out = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        pname = sanitize_name(name, namespace) + "_total"
        out.append("# HELP {} {}".format(pname, help_text(name, "counter")))
        out.append("# TYPE {} counter".format(pname))
        out.append("{} {}".format(pname, _fmt(value)))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        pname = sanitize_name(name, namespace)
        out.append("# HELP {} {}".format(pname, help_text(name, "gauge")))
        out.append("# TYPE {} gauge".format(pname))
        out.append("{} {}".format(pname, _fmt(value)))
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        pname = sanitize_name(name, namespace)
        out.append(
            "# HELP {} {}".format(pname, help_text(name, "histogram")))
        out.append("# TYPE {} histogram".format(pname))
        out.extend(_histogram_lines(pname, dict(data)))
    return "\n".join(out) + ("\n" if out else "")
