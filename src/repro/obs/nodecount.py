"""Generic AST/IR size measurement for pipeline instrumentation.

Every language in the reproduction represents programs as trees of
:class:`repro.common.astbase.Node` (with ``_fields``) held inside
per-IR function containers (``RTLFunction``, ``LinearFunction``, …)
and an :class:`~repro.langs.ir.base.IRModule`-like module object.
``count_nodes`` walks any of them and counts the reachable
Node/container objects — a uniform "program size" usable before and
after every pass, from MiniC down to x86.
"""

from repro.common.astbase import Node

_LEAVES = (str, bytes, int, float, bool, type(None))


def _slot_names(obj):
    names = []
    for klass in type(obj).__mro__:
        names.extend(getattr(klass, "__slots__", ()))
    return names


def count_nodes(root):
    """Number of repro AST/IR objects reachable from ``root``.

    Counts :class:`Node` instances and any other object defined in a
    ``repro.`` module (function containers, modules); traverses tuples,
    lists, sets, dicts and object fields. Shared subtrees are counted
    once (identity-deduplicated).
    """
    seen = set()
    count = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        if isinstance(obj, _LEAVES):
            continue
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(obj, (tuple, list, set, frozenset)):
            stack.extend(obj)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        if isinstance(obj, Node):
            count += 1
            stack.extend(
                getattr(obj, field) for field in obj._fields
            )
            continue
        if type(obj).__module__.startswith("repro."):
            count += 1
            slots = _slot_names(obj)
            if slots:
                stack.extend(
                    getattr(obj, name, None)
                    for name in slots
                    if name != "_hash"
                )
            else:
                stack.extend(vars(obj).values())
    return count
