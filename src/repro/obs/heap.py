"""Heap and interning telemetry: measure the hash-consed state heap.

The ROADMAP's "interning wall" item says wall-clock is now dominated by
``_intern_world`` / ``World.__hash__`` — this module turns that from a
profiler anecdote into numbers that can be gated and compared across
runs:

* :func:`intern_census` — per intern table: live size, cumulative
  hit rate, capacity evictions (``clears``), peak occupancy and a
  bucket-collision estimate (how crowded the backing dict's slots are
  under the current hash function).
* :func:`graph_census` — sharing-aware deep-size accounting over a
  finished :class:`~repro.semantics.explore.StateGraph`:
  ``bytes_unique`` walks the object graph once (every object counted
  once, however many worlds share it) while ``bytes_if_copied`` sums
  per-world *tree* sizes (what a naive no-sharing representation would
  allocate). Their ratio is the **sharing factor** — the multiplier
  hash-consing and the overlay memories are actually buying — with a
  per-component-type breakdown showing where the bytes live.
* optional ``--heap-profile`` tracemalloc phase snapshots
  (:func:`start_tracemalloc` / :func:`phase_snapshot`), gated because
  tracemalloc slows allocation several-fold.

Everything is published as ordinary ``heap.*`` / ``intern.table.*``
gauges, so it surfaces in ``--metrics-out`` snapshots, the ``repro
profile`` Heap section, and the Prometheus exposition with no extra
plumbing. The graph census is deliberately *post-run* (it walks the
finished graph), so the hot loop never pays for it.
"""

import gc
import os
import sys
import types

from repro import obs
from repro.common import intern

#: Env-var gate for the expensive paths (graph census + tracemalloc).
ENV_HEAP_PROFILE = "REPRO_HEAP_PROFILE"

_TRUTHY = ("1", "true", "yes", "on")

#: Keys sampled per table for the bucket-collision estimate.
_COLLISION_SAMPLE = 4096

#: Per-type rows published as gauges / rendered in the profile.
TOP_TYPES = 8

#: Hard cap on traversed objects (a census must never OOM the run).
_MAX_OBJECTS = 5_000_000

#: CLI override: None defers to the environment.
_flag = None


def set_enabled(value):
    """Tri-state override (the ``--heap-profile`` flag): ``True`` /
    ``False`` win; ``None`` defers to ``REPRO_HEAP_PROFILE``."""
    global _flag
    _flag = None if value is None else bool(value)


def enabled(environ=None):
    """Whether the expensive heap profiling paths should run."""
    if _flag is not None:
        return _flag
    env = os.environ if environ is None else environ
    return env.get(ENV_HEAP_PROFILE, "").strip().lower() in _TRUTHY


# ----- intern-table census --------------------------------------------------


def _dict_capacity(n):
    """CPython dict slot count for ``n`` live entries (growth policy:
    start at 8, resize when 2/3 full — an estimate, not an ABI)."""
    cap = 8
    while n >= (cap * 2) // 3:
        cap <<= 1
    return cap


def _collision_estimate(table):
    """Estimated entries sharing a hash bucket, from a key sample.

    Maps sampled key hashes onto the estimated slot mask; the shortfall
    of distinct slots scaled to the full population approximates how
    many entries probe past their home slot.
    """
    size = len(table)
    if size < 2:
        return 0
    mask = _dict_capacity(size) - 1
    sampled = 0
    buckets = set()
    for key in table:
        buckets.add(hash(key) & mask)
        sampled += 1
        if sampled >= _COLLISION_SAMPLE:
            break
    rate = 1.0 - (len(buckets) / sampled)
    return int(round(rate * size))


def intern_census():
    """Per-table occupancy/effectiveness facts, keyed by table name."""
    out = {}
    for t in intern.TABLES:
        hits, misses = t.hits, t.misses
        total = hits + misses
        out[t.name] = {
            "size": len(t.table),
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "clears": t.clears,
            "peak_size": t.peak_size,
            "max_size": t.max_size,
            "capacity_estimate": _dict_capacity(len(t.table)),
            "collisions_estimate": _collision_estimate(t.table),
            "table_bytes": sys.getsizeof(t.table),
        }
    return out


def publish_intern_census(census=None):
    """Surface the census as ``intern.table.<name>.*`` gauges."""
    if not obs.metrics_enabled():
        return
    if census is None:
        census = intern_census()
    for name, entry in census.items():
        prefix = "intern.table.{}.".format(name)
        obs.set_gauge(prefix + "size", entry["size"])
        obs.gauge_max(prefix + "peak_size", entry["peak_size"])
        obs.set_gauge(prefix + "clears", entry["clears"])
        obs.set_gauge(
            prefix + "hit_rate", round(entry["hit_rate"], 6)
        )
        obs.set_gauge(
            prefix + "collisions_estimate",
            entry["collisions_estimate"],
        )
        obs.set_gauge(prefix + "table_bytes", entry["table_bytes"])


# ----- sharing-aware graph deep-size ---------------------------------------

#: Referent types that are program machinery, not state data: the
#: traversal cuts at them so the census measures the state heap, not
#: interpreter internals reachable through a stray reference.
_SKIP_TYPES = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.CodeType,
    types.GetSetDescriptorType,
    types.MemberDescriptorType,
    property,
    classmethod,
    staticmethod,
)


def _children(obj):
    """State-data referents of ``obj`` (generic, via the GC)."""
    return [
        c
        for c in gc.get_referents(obj)
        if c is not None and not isinstance(c, _SKIP_TYPES)
    ]


def graph_census(graph):
    """Sharing-aware deep-size accounting over ``graph``'s worlds.

    Returns a dict with ``bytes_unique`` (each live object counted
    once), ``bytes_if_copied`` (sum of per-world tree sizes: the
    no-sharing counterfactual), their ratio ``sharing_factor``,
    per-world averages and a per-type breakdown of the unique bytes.
    """
    worlds = graph.states
    sizeof = sys.getsizeof

    # Pass 1: every distinct reachable object, once. The `objects`
    # list keeps everything alive so ids stay stable for pass 2.
    seen = set()
    objects = []
    per_type = {}
    bytes_unique = 0
    truncated = False
    stack = list(worlds)
    while stack:
        obj = stack.pop()
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        objects.append(obj)
        if len(objects) > _MAX_OBJECTS:
            truncated = True
            break
        size = sizeof(obj)
        bytes_unique += size
        tname = type(obj).__name__
        agg = per_type.get(tname)
        if agg is None:
            per_type[tname] = agg = [0, 0]
        agg[0] += 1
        agg[1] += size
        stack.extend(_children(obj))

    # Pass 2: memoized tree sizes (cycles — impossible for immutable
    # states, but guarded — contribute at their own level only).
    memo = {}
    on_stack = set()
    for root in worlds:
        work = [(root, False)]
        while work:
            obj, processed = work.pop()
            oid = id(obj)
            if processed:
                total = sizeof(obj)
                for child in _children(obj):
                    total += memo.get(id(child), 0)
                memo[oid] = total
                on_stack.discard(oid)
                continue
            if oid in memo or oid in on_stack or oid not in seen:
                continue
            on_stack.add(oid)
            work.append((obj, True))
            for child in _children(obj):
                cid = id(child)
                if cid not in memo and cid not in on_stack:
                    work.append((child, False))
    bytes_if_copied = sum(memo.get(id(w), 0) for w in worlds)

    n = len(worlds)
    return {
        "worlds": n,
        "objects": len(objects),
        "bytes_unique": bytes_unique,
        "bytes_if_copied": bytes_if_copied,
        "sharing_factor": (
            round(bytes_if_copied / bytes_unique, 3)
            if bytes_unique
            else 0.0
        ),
        "bytes_per_world_unique": (
            round(bytes_unique / n, 1) if n else 0.0
        ),
        "bytes_per_world_copied": (
            round(bytes_if_copied / n, 1) if n else 0.0
        ),
        "truncated": truncated,
        "per_type": {
            tname: {"count": agg[0], "bytes": agg[1]}
            for tname, agg in per_type.items()
        },
    }


def publish_graph_census(census):
    """Surface the graph census as ``heap.graph.*`` /
    ``heap.type.*`` gauges (exported to Prometheus generically)."""
    if not obs.metrics_enabled():
        return
    for key in (
        "worlds",
        "objects",
        "bytes_unique",
        "bytes_if_copied",
        "sharing_factor",
        "bytes_per_world_unique",
        "bytes_per_world_copied",
    ):
        obs.set_gauge("heap.graph.{}".format(key), census[key])
    top = sorted(
        census["per_type"].items(), key=lambda kv: -kv[1]["bytes"]
    )[:TOP_TYPES]
    for tname, entry in top:
        obs.set_gauge(
            "heap.type.{}.bytes".format(tname), entry["bytes"]
        )
        obs.set_gauge(
            "heap.type.{}.count".format(tname), entry["count"]
        )
    if census["truncated"]:
        obs.warn(
            "heap census truncated at {} objects; sharing numbers "
            "are a lower bound".format(_MAX_OBJECTS)
        )


def collect(graph):
    """The post-run hook: census the graph + tables and publish both
    (called by the explorers when :func:`enabled`, inside its own span
    so the census cost is attributed, never hidden)."""
    with obs.span("heap.census") as sp:
        census = graph_census(graph)
        publish_graph_census(census)
        publish_intern_census()
        sp.set(
            worlds=census["worlds"],
            sharing_factor=census["sharing_factor"],
        )
        phase_snapshot("explore")
    return census


# ----- tracemalloc phase snapshots -----------------------------------------


def start_tracemalloc():
    """Begin tracing allocations (idempotent; gated by the caller)."""
    import tracemalloc

    if not tracemalloc.is_tracing():
        tracemalloc.start()


def phase_snapshot(name):
    """Record current/peak traced bytes for a named phase (no-op when
    tracemalloc is off — the gauges only exist under --heap-profile
    with tracing started)."""
    import tracemalloc

    if not tracemalloc.is_tracing():
        return
    current, peak = tracemalloc.get_traced_memory()
    obs.set_gauge(
        "heap.tracemalloc.{}.current_bytes".format(name), current
    )
    obs.gauge_max(
        "heap.tracemalloc.{}.peak_bytes".format(name), peak
    )
