"""The interleaving inspector: render artifacts for human eyes.

Four artifact families come out of the tool — **witness** files (one
JSON object: a replayable schedule plus its verdict, written by ``drf
--witness-out`` / ``repro replay``), **trace** files (JSON lines of
spans/events/metrics, written by ``--trace``), **run manifests**
(``--ledger``), and **heartbeat** snapshots (``--status``).
``repro inspect FILE`` sniffs which one it was handed and renders it:

* a witness becomes a per-thread timeline — one column per thread,
  one row per scheduling step, each cell showing what the acting
  thread did (``τ``, an event, a context switch, the abort) with the
  step footprint alongside and every address involved in the racy
  conflict marked with ``*``;
* a trace becomes a summary — per-span aggregates (count / total /
  mean / max seconds), event and warning tallies, and the final
  metrics snapshot when one was appended;
* a run manifest becomes a compact fact sheet — command, verdict,
  wall/phase times, states/s, resolved config and content hash;
* a heartbeat renders through the same view ``repro status`` uses;
* a fuzz campaign's **findings log** becomes a per-finding table
  (kind, generator, input hash, expected?, witness path) and its
  **checkpoint** a one-glance progress line — the ``repro fuzz``
  artifacts (see :mod:`repro.fuzz.corpus`).

Rendering is pure string-building over the deserialized artifacts; it
never re-executes anything (that is ``repro replay``'s job).
"""

import json

from repro.obs.trace import read_trace


def racy_addrs(race):
    """The addresses that make a recorded prediction pair conflict.

    A conflict needs one side's writes to meet the other side's
    footprint, so the culprits are ``(ws1 ∩ locs2) ∪ (ws2 ∩ locs1)``.
    Empty for abort witnesses (no race dict).
    """
    if not race:
        return frozenset()
    rs1 = set(race.get("rs1", ()))
    ws1 = set(race.get("ws1", ()))
    rs2 = set(race.get("rs2", ()))
    ws2 = set(race.get("ws2", ()))
    return frozenset((ws1 & (rs2 | ws2)) | (ws2 & (rs1 | ws1)))


def _addr_list(addrs, hot):
    return ",".join(
        "{}{}".format(a, "*" if a in hot else "") for a in addrs
    )


def _fp_str(rs, ws, hot):
    """``r{...} w{...}`` with racy addresses starred; '' when absent."""
    parts = []
    if rs:
        parts.append("r{" + _addr_list(rs, hot) + "}")
    if ws:
        parts.append("w{" + _addr_list(ws, hot) + "}")
    return " ".join(parts)


def _cell(step):
    kind = step.kind
    if kind == "tau":
        return "τ"
    if kind == "sw":
        return "~~> t{}".format(step.to)
    if kind == "event":
        if step.detail is not None:
            return "{} {}".format(step.detail[0], step.detail[1])
        return "event"
    if kind == "abort":
        return "ABORT"
    return kind


def _pred_str(race, side, hot):
    return "t{} {} (atomic={})".format(
        race.get("tid" + side),
        _fp_str(race.get("rs" + side, ()), race.get("ws" + side, ()),
                hot) or "∅",
        race.get("bit" + side, 0),
    )


def render_witness(record):
    """The per-thread timeline of a witness record, as plain text."""
    from repro.framework.report import format_table

    schedule = record.schedule
    hot = racy_addrs(record.race)
    tids = sorted(
        {st.tid for st in schedule.steps if st.tid is not None}
        | {st.to for st in schedule.steps if st.to is not None}
        | {
            record.race[k]
            for k in ("tid1", "tid2")
            if record.race and k in record.race
        }
    )
    lines = [
        "witness: verdict={}{}  semantics={}  por={}  steps={}".format(
            record.verdict,
            " (minimized)" if record.minimized else "",
            schedule.semantics,
            schedule.por,
            len(schedule.steps),
        )
    ]
    if record.program:
        prog = record.program
        desc = ", ".join(
            "{}={}".format(k, prog[k]) for k in sorted(prog)
        )
        lines.append("program: " + desc)
    lines.append("")
    if schedule.steps:
        headers = ["Step"] + ["t{}".format(t) for t in tids] + [
            "Footprint"
        ]
        rows = []
        for n, st in enumerate(schedule.steps):
            cells = [""] * len(tids)
            if st.tid in tids:
                cells[tids.index(st.tid)] = _cell(st)
            fp = _fp_str(st.rs or (), st.ws or (), hot)
            if st.kind == "abort" and st.detail:
                fp = str(st.detail)
            rows.append([str(n)] + cells + [fp])
        lines.append(format_table(rows, headers=headers))
    else:
        lines.append("(empty schedule: the initial world is already "
                     "the witness state)")
    lines.append("")
    if record.verdict == "race" and record.race:
        lines.append(
            "race at the final world: {}  ⌢  {}".format(
                _pred_str(record.race, "1", hot),
                _pred_str(record.race, "2", hot),
            )
        )
        if hot:
            lines.append(
                "conflicting address(es): {}".format(
                    ", ".join(str(a) for a in sorted(hot))
                )
            )
    elif record.verdict == "abort":
        last = schedule.steps[-1] if schedule.steps else None
        reason = last.detail if last is not None else None
        lines.append("abort: {}".format(reason or "(unknown reason)"))
    return "\n".join(lines)


def render_trace_summary(records):
    """Aggregate a trace's records into a plain-text summary."""
    from repro.framework.report import format_table
    from repro.obs.render import render_metrics

    spans = {}
    events = {}
    warnings = {}
    metrics = None
    meta = None
    for rec in records:
        kind = rec.get("type")
        if kind == "span":
            name = rec.get("name", "?")
            agg = spans.setdefault(name, [0, 0.0, 0.0])
            agg[0] += 1
            dur = rec.get("dur", 0.0) or 0.0
            agg[1] += dur
            agg[2] = max(agg[2], dur)
        elif kind == "event":
            name = rec.get("name", "?")
            if name == "warning":
                msg = (rec.get("attrs") or {}).get("message", "?")
                warnings[msg] = warnings.get(msg, 0) + 1
            else:
                events[name] = events.get(name, 0) + 1
        elif kind == "metrics":
            metrics = rec.get("data")
        elif kind == "meta":
            meta = rec
    lines = [
        "trace: {} record(s){}".format(
            len(records),
            ""
            if meta is None
            else ", schema v{}".format(meta.get("version")),
        )
    ]
    if spans:
        rows = [
            (
                name,
                agg[0],
                "{:.6f}".format(agg[1]),
                "{:.6f}".format(agg[1] / agg[0]),
                "{:.6f}".format(agg[2]),
            )
            for name, agg in sorted(spans.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                rows,
                headers=("Span", "Count", "Total s", "Mean s",
                         "Max s"),
            )
        )
    if events:
        lines.append("")
        lines.append(
            format_table(
                sorted(events.items()),
                headers=("Event", "Count"),
            )
        )
    if warnings:
        lines.append("")
        lines.append(
            format_table(
                [(m, n) for m, n in sorted(warnings.items())],
                headers=("Warning", "Count"),
            )
        )
    if metrics is not None:
        lines.append("")
        lines.append("final metrics:")
        lines.append(render_metrics(metrics))
    return "\n".join(lines)


def render_manifest_summary(doc):
    """A run manifest as a compact plain-text fact sheet."""
    from repro.framework.report import format_table

    lines = [
        "run manifest: command={}  verdict={}  exit={}".format(
            doc.get("command", "?"),
            doc.get("verdict", "?"),
            doc.get("exit_status"),
        ),
        "started {}  finished {}  wall {:.3f}s".format(
            doc.get("started_at", "?"),
            doc.get("finished_at", "?"),
            doc.get("wall_seconds") or 0.0,
        ),
    ]
    if doc.get("argv"):
        lines.append("argv: " + " ".join(str(a) for a in doc["argv"]))
    if doc.get("content_hash"):
        lines.append("content hash: {}".format(doc["content_hash"]))
    if doc.get("fingerprint"):
        lines.append(
            "behaviour fingerprint: {}".format(doc["fingerprint"]))
    if doc.get("states"):
        rate = doc.get("states_per_second")
        lines.append(
            "states: {:,}{}".format(
                doc["states"],
                "" if not rate else "  ({:,.1f} states/s)".format(rate),
            )
        )
    config = doc.get("config") or {}
    if config:
        lines.append("")
        lines.append(
            format_table(
                [(k, str(config[k])) for k in sorted(config)],
                headers=("Config", "Value"),
            )
        )
    phases = doc.get("phases") or {}
    if phases:
        lines.append("")
        lines.append(
            format_table(
                [
                    (name, "{:.6f}".format(phases[name]))
                    for name in sorted(
                        phases, key=phases.get, reverse=True
                    )
                ],
                headers=("Phase", "Seconds"),
            )
        )
    return "\n".join(lines)


def _campaign_line(campaign):
    return "campaign: " + (
        ", ".join(
            "{}={}".format(k, campaign[k]) for k in sorted(campaign)
        )
        or "(unknown)"
    )


def render_findings_summary(doc):
    """A fuzz campaign's findings log as a plain-text digest."""
    from repro.framework.report import format_table

    findings = doc.get("findings") or []
    unexpected = sum(
        1 for f in findings if not f.get("expected")
    )
    lines = [
        "fuzz findings: {} total, {} unexpected".format(
            len(findings), unexpected
        ),
        _campaign_line(doc.get("campaign") or {}),
    ]
    if findings:
        rows = []
        for f in findings:
            inp = f.get("input") or {}
            rows.append(
                (
                    f.get("kind", "?"),
                    inp.get("kind", "?"),
                    str(inp.get("index", "?")),
                    (inp.get("hash") or "?")[:12],
                    "yes" if f.get("expected") else "NO",
                    str(
                        f.get("schedule_steps")
                        if f.get("schedule_steps") is not None
                        else "-"
                    ),
                    f.get("witness") or "-",
                )
            )
        lines.append("")
        lines.append(
            format_table(
                rows,
                headers=("Finding", "Generator", "Index", "Hash",
                         "Expected", "Steps", "Witness"),
            )
        )
        lines.append("")
        for n, f in enumerate(findings):
            detail = (f.get("detail") or "").strip().splitlines()
            if detail:
                lines.append("[{}] {}".format(n, detail[-1]))
    return "\n".join(lines)


def render_checkpoint_summary(doc):
    """A fuzz campaign's resume point as a one-glance progress line."""
    state = doc.get("payload") or {}
    done = state.get("done") or {}
    count = state.get("count") or 0
    lines = [
        "fuzz checkpoint: {}/{} input(s) finished{}".format(
            len(done), count,
            "" if len(done) < count else " (campaign complete)",
        ),
        "campaign: seed={}, kinds={}, generator v{}".format(
            state.get("seed"),
            ",".join(state.get("kinds") or ()) or "?",
            state.get("generator_version"),
        ),
    ]
    remaining = [
        i for i in range(count) if str(i) not in done
    ]
    if remaining:
        shown = ", ".join(str(i) for i in remaining[:12])
        if len(remaining) > 12:
            shown += ", ... (+{} more)".format(len(remaining) - 12)
        lines.append("pending index(es): " + shown)
    return "\n".join(lines)


#: Whole-file JSON ``"type"`` values the sniffer recognises.
_DOC_TYPES = (
    "witness", "run-manifest", "heartbeat", "fuzz-findings",
    "fuzz-checkpoint",
)


def sniff_artifact(path):
    """What kind of artifact ``path`` is.

    One of ``"witness"``, ``"run-manifest"``, ``"heartbeat"`` or
    ``"trace"``: the first three are single (typically indented) JSON
    objects self-describing via their ``"type"`` key; anything else
    that parses line-by-line is treated as a JSON-lines trace.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        rec = json.loads(text)
    except ValueError:
        return "trace"
    if isinstance(rec, dict) and rec.get("type") in _DOC_TYPES:
        return rec["type"]
    return "trace"


def inspect_path(path):
    """Render whichever artifact lives at ``path``."""
    from repro.semantics.witness import load_witness

    kind = sniff_artifact(path)
    if kind == "witness":
        return render_witness(load_witness(path))
    if kind == "run-manifest":
        with open(path) as handle:
            return render_manifest_summary(json.load(handle))
    if kind == "heartbeat":
        from repro.obs.status import render_status

        with open(path) as handle:
            return render_status(json.load(handle))
    if kind == "fuzz-findings":
        with open(path) as handle:
            return render_findings_summary(json.load(handle))
    if kind == "fuzz-checkpoint":
        with open(path) as handle:
            return render_checkpoint_summary(json.load(handle))
    return render_trace_summary(read_trace(path))
