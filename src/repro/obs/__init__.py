"""Unified observability: metrics registry + span tracer + profiling.

This package is the single switchboard the hot layers (exploration,
validation, the compiler pipeline) report through. Its contract:

* **Disabled is free.** The module-level :data:`enabled` flag is
  ``False`` by default; every helper checks it before allocating
  anything, and instrumented loops are expected to hoist the check
  (``track = obs.enabled``) so the off cost is one attribute load per
  call site. :func:`span` returns the shared
  :data:`~repro.obs.trace.NULL_SPAN` singleton when disabled.
* **One switch, two backends.** :func:`configure` turns on a process-
  wide :class:`~repro.obs.metrics.MetricsRegistry` (``--metrics`` /
  ``REPRO_METRICS=1``) and/or a JSON-lines
  :class:`~repro.obs.trace.Tracer` (``--trace FILE`` /
  ``REPRO_TRACE=FILE``). Spans feed both: every closed span is written
  to the trace and its duration observed into the
  ``span.<name>.seconds`` histogram, which is how per-phase profiling
  appears in the metrics table.
* **Warnings always flow, once.** :func:`warn` prints one line to
  stderr regardless of the flags (and records it as a counter + trace
  event when they are on), so diagnosable conditions — e.g.
  exploration truncation — surface from the CLI without extra flags.
  Identical messages are printed only the first time; repeats are
  counted and a per-message suppression summary is printed on
  :func:`shutdown`, so a hot loop cannot flood stderr.
* **Machine-readable exit snapshot.** ``metrics_out`` (``--metrics-out
  FILE`` / ``REPRO_METRICS_OUT=FILE``) implies the registry and makes
  :func:`shutdown` write the final metrics snapshot as one JSON
  document — the artifact CI jobs diff and archive.
* **A live layer on top.** Three sibling modules reuse this
  switchboard for *during-* and *after-the-run* introspection:
  :mod:`~repro.obs.status` (``--status`` / ``REPRO_STATUS``) has the
  exploration loops atomically rewrite a small heartbeat JSON every
  interval — progress, rolling states/s, per-shard liveness — read
  back by ``repro status FILE``; :mod:`~repro.obs.ledger`
  (``--ledger`` / ``REPRO_LEDGER``) writes a versioned run manifest
  (resolved config, content hash, phase times, verdict, behaviour
  fingerprint) that ``repro compare`` diffs; :mod:`~repro.obs.heap`
  (``--heap-profile``) measures the interning tables and the
  sharing-aware deep size of the explored state graph, published as
  ``intern.table.*`` / ``heap.*`` metrics.

Typical instrumentation::

    from repro import obs

    def explore(...):
        with obs.span("explore"):
            track = obs.enabled
            ...
            if track:
                obs.inc("explore.states_visited", graph.state_count())
"""

import json
import os
import sys
import time

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer, read_trace

__all__ = [
    "enabled",
    "configure",
    "configure_from_env",
    "shutdown",
    "reset",
    "metrics_enabled",
    "metrics_out",
    "trace_enabled",
    "span",
    "event",
    "inc",
    "set_gauge",
    "gauge_max",
    "observe",
    "warn",
    "snapshot",
    "dump",
    "merge_dump",
    "counter_value",
    "gauge_value",
    "render_summary",
    "render_prom",
    "read_trace",
    "NULL_SPAN",
]

#: Fast-path flag: True iff metrics and/or tracing is active. Hot
#: loops read this once per call (``track = obs.enabled``).
enabled = False

#: The active registry / tracer, or ``None`` when off.
registry = None
tracer = None

#: The path the tracer writes to when :func:`configure` was given one
#: (``None`` for file-like sinks or when tracing is off). The parallel
#: explorer reads this to derive per-worker trace paths
#: (``<path>.w<wid>``) for its forked workers.
trace_path = None

#: Destination for the final metrics snapshot (path or file-like), or
#: ``None``; written by :func:`shutdown`.
metrics_out = None

#: Env-var toggles honoured by :func:`configure_from_env` (and the CLI).
ENV_METRICS = "REPRO_METRICS"
ENV_METRICS_OUT = "REPRO_METRICS_OUT"
ENV_TRACE = "REPRO_TRACE"

_TRUTHY = ("1", "true", "yes", "on")

#: Per-message occurrence counts backing the warn rate limiter.
_warn_counts = {}


def _refresh_enabled():
    global enabled
    enabled = registry is not None or tracer is not None


def configure(metrics=False, trace=None, metrics_out_path=None,
              trace_base_attrs=None):
    """Enable observability backends (idempotent; layers on top of any
    already-active configuration).

    ``metrics`` — truthy to activate the process-wide registry.
    ``trace`` — a path or file-like object for JSON-lines output.
    ``metrics_out_path`` — a path or file-like object the final metrics
    snapshot is written to (as JSON) on :func:`shutdown`; implies
    ``metrics``.
    ``trace_base_attrs`` — attributes stamped on every trace record
    (forked workers pass ``{"wid": N}``).
    """
    global registry, tracer, metrics_out, trace_path
    if metrics_out_path is not None and metrics_out is None:
        metrics_out = metrics_out_path
        metrics = True
    if metrics and registry is None:
        registry = MetricsRegistry()
    if trace is not None and tracer is None:
        if hasattr(trace, "write"):
            tracer = Tracer(trace, base_attrs=trace_base_attrs)
        else:
            tracer = Tracer(
                open(trace, "w"), close_sink=True,
                base_attrs=trace_base_attrs,
            )
            trace_path = str(trace)
    _refresh_enabled()


def configure_from_env(environ=None):
    """Apply ``REPRO_METRICS`` / ``REPRO_METRICS_OUT`` / ``REPRO_TRACE``
    from the environment."""
    environ = os.environ if environ is None else environ
    metrics = environ.get(ENV_METRICS, "").strip().lower() in _TRUTHY
    trace = environ.get(ENV_TRACE) or None
    metrics_out_path = environ.get(ENV_METRICS_OUT) or None
    configure(
        metrics=metrics, trace=trace, metrics_out_path=metrics_out_path
    )


def _flush_warn_summary():
    suppressed = {
        msg: n - 1 for msg, n in _warn_counts.items() if n > 1
    }
    _warn_counts.clear()
    for msg, extra in suppressed.items():
        print(
            "repro: warning: (suppressed {} repeat(s) of: {})".format(
                extra, msg
            ),
            file=sys.stderr,
        )


def _write_metrics_out():
    if metrics_out is None or registry is None:
        return
    data = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    if hasattr(metrics_out, "write"):
        metrics_out.write(data + "\n")
    else:
        with open(metrics_out, "w") as handle:
            handle.write(data + "\n")


def shutdown():
    """Flush everything and disable: append the metrics snapshot to the
    tracer (when both backends are on), write the ``metrics_out`` JSON
    snapshot, print the suppressed-warning summary, close the tracer."""
    global registry, tracer, metrics_out, trace_path
    if tracer is not None:
        if registry is not None:
            tracer.metrics(registry.snapshot())
        tracer.close()
    _write_metrics_out()
    _flush_warn_summary()
    registry = None
    tracer = None
    metrics_out = None
    trace_path = None
    _refresh_enabled()


def reset():
    """Hard reset for tests: drop state without flushing."""
    global registry, tracer, metrics_out, trace_path
    registry = None
    tracer = None
    metrics_out = None
    trace_path = None
    _warn_counts.clear()
    _refresh_enabled()


def metrics_enabled():
    return registry is not None


def trace_enabled():
    return tracer is not None


# ----- recording -----------------------------------------------------------


class _MetricsOnlySpan:
    """Span used when metrics are on but tracing is off: records the
    duration histogram without any trace output."""

    __slots__ = ("name", "t0", "attrs")

    def __init__(self, name, attrs):
        self.name = name
        self.attrs = attrs
        self.t0 = time.monotonic()

    def set(self, **attrs):
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if registry is not None:
            registry.observe(
                "span.{}.seconds".format(self.name),
                time.monotonic() - self.t0,
            )
        return False


def span(name, **attrs):
    """A context-managed span; the shared no-op singleton when off."""
    if tracer is not None:
        return _TracedSpan(tracer.start(name, attrs))
    if registry is not None:
        return _MetricsOnlySpan(name, attrs)
    return NULL_SPAN


class _TracedSpan:
    """Wraps a tracer span so its duration also lands in the metrics
    histogram on exit."""

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = inner

    @property
    def name(self):
        return self.inner.name

    @property
    def sid(self):
        return self.inner.sid

    @property
    def attrs(self):
        return self.inner.attrs

    def set(self, **attrs):
        self.inner.set(**attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        dur = self.inner.tracer.finish(self.inner, exc_type)
        if registry is not None:
            registry.observe(
                "span.{}.seconds".format(self.inner.name), dur
            )
        return False


def event(name, **attrs):
    """An instant trace event (no-op unless tracing is on)."""
    if tracer is not None:
        tracer.event(name, attrs)


def inc(name, n=1):
    if registry is not None:
        registry.inc(name, n)


def set_gauge(name, value):
    if registry is not None:
        registry.set_gauge(name, value)


def gauge_max(name, value):
    if registry is not None:
        registry.gauge_max(name, value)


def observe(name, value):
    if registry is not None:
        registry.observe(name, value)


def warn(message, **attrs):
    """One-line diagnostic on stderr; counted/traced when on.

    Rate-limited per message text: the first occurrence prints, repeats
    are silently tallied and summarized by :func:`shutdown` (every
    occurrence still reaches the ``warnings`` counter and the trace, so
    artifacts see the true count).
    """
    count = _warn_counts.get(message, 0) + 1
    _warn_counts[message] = count
    if count == 1:
        print("repro: warning: {}".format(message), file=sys.stderr)
    if registry is not None:
        registry.inc("warnings")
        if count > 1:
            registry.inc("warnings.suppressed")
    if tracer is not None:
        tracer.event("warning", dict(attrs, message=message))


# ----- reading back --------------------------------------------------------


def snapshot():
    """The metrics snapshot, or an empty one when metrics are off."""
    if registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return registry.snapshot()


def dump():
    """The registry's mergeable state (see
    :meth:`~repro.obs.metrics.MetricsRegistry.dump`), or ``None`` when
    metrics are off. What forked workers ship to the coordinator."""
    if registry is None:
        return None
    return registry.dump()


def merge_dump(data):
    """Generically merge a worker's :func:`dump` into the active
    registry (counters add, gauges max, histograms merge); a no-op
    when metrics are off or ``data`` is ``None``."""
    if registry is not None and data is not None:
        registry.merge(data)


def counter_value(name, default=0):
    if registry is None:
        return default
    counter = registry.counters.get(name)
    return default if counter is None else counter.value


def gauge_value(name, default=0):
    if registry is None:
        return default
    gauge = registry.gauges.get(name)
    return default if gauge is None else gauge.value


def render_summary():
    """The metrics summary as a plain-text table block."""
    from repro.obs.render import render_metrics

    return render_metrics(snapshot())


def render_prom():
    """The metrics in Prometheus text exposition format (exact
    histogram buckets, straight from the live registry's reservoirs)."""
    from repro.obs.prom import render_prometheus

    return render_prometheus(
        dump() if registry is not None else snapshot()
    )
