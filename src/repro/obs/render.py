"""Plain-text rendering of a metrics snapshot.

Reuses the Fig. 13 table machinery
(:func:`repro.framework.report.format_table`) so the ``--metrics``
summary looks like the rest of the tool's output: one table for
counters and gauges, one for histograms (count/min/max/mean/p50/p95).
"""


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.6f}".format(value)
    return str(value)


def render_metrics(snapshot):
    """Render a :meth:`MetricsRegistry.snapshot` as text tables."""
    # Imported lazily: framework.report pulls in the validator stack,
    # which itself reports through repro.obs.
    from repro.framework.report import format_table

    blocks = []
    scalars = [
        (name, _fmt(value))
        for name, value in snapshot["counters"].items()
    ] + [
        (name, _fmt(value))
        for name, value in snapshot["gauges"].items()
    ]
    if scalars:
        blocks.append(
            format_table(sorted(scalars), headers=("Metric", "Value"))
        )
    hists = [
        (
            name,
            summ["count"],
            _fmt(summ["min"]),
            _fmt(summ["max"]),
            _fmt(summ["mean"]),
            _fmt(summ["p50"]),
            _fmt(summ["p95"]),
        )
        for name, summ in snapshot["histograms"].items()
    ]
    if hists:
        blocks.append(
            format_table(
                hists,
                headers=(
                    "Histogram", "Count", "Min", "Max", "Mean",
                    "P50", "P95",
                ),
            )
        )
    if not blocks:
        return "(no metrics recorded)"
    return "\n\n".join(blocks)
