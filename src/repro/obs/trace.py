"""Span-based tracing: JSON-lines events with monotonic timestamps.

A :class:`Tracer` writes one JSON object per line to a sink:

* ``{"type": "meta", ...}`` — a header line identifying the schema;
* ``{"type": "span", "name", "sid", "parent", "ts", "dur", "attrs"}``
  — one complete span, emitted when it closes.  ``ts`` is the span's
  start, seconds since the trace began (``time.monotonic`` based, so
  durations are immune to wall-clock jumps); ``parent`` is the ``sid``
  of the enclosing span or ``null`` at top level;
* ``{"type": "event", "name", "sid", "parent", "ts", "attrs"}`` — an
  instant (zero-duration) event nested under the current span;
* ``{"type": "metrics", "data": ...}`` — the final metrics snapshot,
  appended on shutdown when the metrics registry is also enabled.

Nesting is tracked per thread; ``sid`` assignment is a shared atomic
counter so ids are unique across threads.
"""

import itertools
import json
import threading
import time

TRACE_SCHEMA_VERSION = 1


class Span:
    """A live span: use as a context manager; ``set`` adds attributes."""

    __slots__ = ("tracer", "name", "sid", "parent", "t0", "attrs")

    def __init__(self, tracer, name, sid, parent, t0, attrs):
        self.tracer = tracer
        self.name = name
        self.sid = sid
        self.parent = parent
        self.t0 = t0
        self.attrs = attrs

    def set(self, **attrs):
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer.finish(self, exc_type)
        return False


class NullSpan:
    """The disabled fast path: a shared, allocation-free no-op span.

    ``repro.obs.span`` returns this singleton whenever observability is
    off, so instrumented ``with`` blocks cost one function call and two
    no-op method calls — no allocation, no clock read.
    """

    __slots__ = ()

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Writes spans and events as JSON lines to a file-like sink.

    ``base_attrs`` are merged into every span and event record (span
    attributes win on collision) and echoed on the ``meta`` header
    line. The parallel explorer's forked workers use this to stamp a
    ``wid`` on every record of their per-worker trace file, so merged
    readings can always attribute a span to its shard.
    """

    def __init__(self, sink, close_sink=False, base_attrs=None):
        self.sink = sink
        self.close_sink = close_sink
        self.base_attrs = dict(base_attrs) if base_attrs else None
        self.t0 = time.monotonic()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._lock = threading.Lock()
        meta = {
            "type": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "clock": "monotonic",
        }
        if self.base_attrs:
            meta["attrs"] = dict(self.base_attrs)
        self._write(meta)

    # ----- span lifecycle --------------------------------------------------

    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_sid(self):
        stack = self._stack()
        return stack[-1].sid if stack else None

    def start(self, name, attrs=None):
        span = Span(
            self,
            name,
            next(self._ids),
            self.current_sid(),
            time.monotonic(),
            dict(attrs) if attrs else {},
        )
        self._stack().append(span)
        return span

    def finish(self, span, exc_type=None):
        dur = time.monotonic() - span.t0
        stack = self._stack()
        if span in stack:
            # Tolerate out-of-order exits instead of corrupting nesting.
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        record = {
            "type": "span",
            "name": span.name,
            "sid": span.sid,
            "parent": span.parent,
            "ts": round(span.t0 - self.t0, 9),
            "dur": round(dur, 9),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        attrs = span.attrs
        if self.base_attrs:
            attrs = dict(self.base_attrs, **attrs)
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        return dur

    def event(self, name, attrs=None):
        record = {
            "type": "event",
            "name": name,
            "sid": next(self._ids),
            "parent": self.current_sid(),
            "ts": round(time.monotonic() - self.t0, 9),
        }
        merged = dict(self.base_attrs) if self.base_attrs else {}
        if attrs:
            merged.update(attrs)
        if merged:
            record["attrs"] = merged
        self._write(record)

    def metrics(self, snapshot):
        self._write({"type": "metrics", "data": snapshot})

    # ----- output ---------------------------------------------------------

    def _write(self, record):
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self.sink.write(line + "\n")

    def flush(self):
        """Push buffered lines to the OS now.

        The parallel explorer calls this immediately before forking
        workers: a fork duplicates the sink's userspace buffer, and a
        child that later garbage-collects its inherited copy would
        flush those same bytes a second time into the shared file
        descriptor — interleaving duplicate, possibly torn JSONL lines
        into the parent's trace. An empty buffer makes the inherited
        copy harmless.
        """
        with self._lock:
            self.sink.flush()

    def close(self):
        with self._lock:
            try:
                self.sink.flush()
            finally:
                if self.close_sink:
                    self.sink.close()


def read_trace(path_or_file, strict=False):
    """Parse a JSON-lines trace back into a list of records.

    Trace files get truncated — a crashed run leaves a torn final
    line, a filled disk leaves garbage — so by default corrupt lines
    are *skipped*, not fatal: the good records still parse, the skip
    count lands in the ``trace.read.skipped_lines`` counter and a
    single (rate-limited) warning names the file. ``strict=True``
    restores the raising behaviour for tests that want to pin down
    writer bugs.
    """
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
        name = getattr(path_or_file, "name", "<trace>")
    else:
        with open(path_or_file) as handle:
            lines = handle.read().splitlines()
        name = str(path_or_file)
    records = []
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            if strict:
                raise
            skipped += 1
            continue
        records.append(rec)
    if skipped:
        # Imported here: repro.obs imports this module at load time.
        from repro import obs

        obs.inc("trace.read.skipped_lines", skipped)
        obs.warn(
            "skipped {} corrupt line(s) reading trace {}".format(
                skipped, name
            )
        )
    return records
