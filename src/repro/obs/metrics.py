"""Process-wide metrics primitives: counters, gauges, histograms.

The registry is deliberately simple — named instruments living in
plain dicts, created on first touch. Speed matters only *relative to
the disabled path*: callers in the hot loops (`semantics.explore`,
`simulation.local`) guard every call behind the module-level
``repro.obs.enabled`` flag, so none of this code runs when
observability is off.

Histograms keep raw observations (bounded by a reservoir cap) so the
summary can report exact min/max/mean and nearest-rank p50/p95 for the
volumes this system produces (per-pass durations, segment sizes —
thousands of points, not millions).
"""


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """A point-in-time value; ``set_max`` keeps high-water marks."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def set_max(self, value):
        if value > self.value:
            self.value = value


#: Beyond this many observations a histogram keeps every k-th sample
#: (deterministic decimation — no RNG, so traces stay reproducible).
RESERVOIR_CAP = 65536


class Histogram:
    """A distribution summarised as count/min/max/mean/p50/p95."""

    __slots__ = ("values", "count", "total", "vmin", "vmax", "_stride",
                 "_skip")

    def __init__(self):
        self.values = []
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None
        self._stride = 1
        self._skip = 0

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if self._skip > 0:
            self._skip -= 1
            return
        self.values.append(value)
        self._skip = self._stride - 1
        if len(self.values) >= RESERVOIR_CAP:
            # Halve the reservoir, double the stride.
            self.values = self.values[::2]
            self._stride *= 2

    def percentile(self, q):
        """Nearest-rank percentile over the retained samples."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(
            0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        )
        return ordered[rank]

    def summary(self):
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
            "mean": mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # ----- instrument lookup ---------------------------------------------

    def counter(self, name):
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name):
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name):
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # ----- recording shorthand -------------------------------------------

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def gauge_max(self, name, value):
        self.gauge(name).set_max(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # ----- output ---------------------------------------------------------

    def snapshot(self):
        """A plain-dict view: JSON-serialisable, sorted by name."""
        return {
            "counters": {
                name: c.value
                for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self):
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
