"""Process-wide metrics primitives: counters, gauges, histograms.

The registry is deliberately simple — named instruments living in
plain dicts, created on first touch. Speed matters only *relative to
the disabled path*: callers in the hot loops (`semantics.explore`,
`simulation.local`) guard every call behind the module-level
``repro.obs.enabled`` flag, so none of this code runs when
observability is off.

Histograms keep raw observations (bounded by a reservoir cap) so the
summary can report exact min/max/mean and nearest-rank p50/p95 for the
volumes this system produces (per-pass durations, segment sizes —
thousands of points, not millions).

Every instrument is **mergeable**: :meth:`MetricsRegistry.dump`
produces a plain-dict state a forked worker can ship across a process
boundary, and :meth:`MetricsRegistry.merge` folds such a dump into the
receiving registry *generically* — counters add, gauges keep the max,
histograms combine their exact aggregates (count/total/min/max) and
interleave their retained reservoirs. The parallel explorer's
coordinator uses this to absorb each worker's complete snapshot
instead of hand-picking counters, so a new worker-side metric needs no
coordinator change to surface.
"""


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n


class Gauge:
    """A point-in-time value; ``set_max`` keeps high-water marks."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def set_max(self, value):
        if value > self.value:
            self.value = value


#: Beyond this many observations a histogram keeps every k-th sample
#: (deterministic decimation — no RNG, so traces stay reproducible).
RESERVOIR_CAP = 65536


class Histogram:
    """A distribution summarised as count/min/max/mean/p50/p95."""

    __slots__ = ("values", "count", "total", "vmin", "vmax", "_stride",
                 "_skip")

    def __init__(self):
        self.values = []
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None
        self._stride = 1
        self._skip = 0

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        if self._skip > 0:
            self._skip -= 1
            return
        self.values.append(value)
        self._skip = self._stride - 1
        if len(self.values) >= RESERVOIR_CAP:
            # Halve the reservoir, double the stride.
            self.values = self.values[::2]
            self._stride *= 2

    def percentile(self, q):
        """Nearest-rank percentile over the retained samples."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(
            0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        )
        return ordered[rank]

    def dump(self):
        """Mergeable plain-dict state (exact aggregates + reservoir)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "values": list(self.values),
        }

    def merge_dump(self, dump):
        """Fold another histogram's :meth:`dump` into this one.

        count/total/min/max merge exactly; the reservoirs concatenate
        (re-decimated if the cap is exceeded), so percentiles stay
        representative of the combined stream.
        """
        self.count += dump["count"]
        self.total += dump["total"]
        other_min = dump["min"]
        other_max = dump["max"]
        if other_min is not None and (
            self.vmin is None or other_min < self.vmin
        ):
            self.vmin = other_min
        if other_max is not None and (
            self.vmax is None or other_max > self.vmax
        ):
            self.vmax = other_max
        self.values.extend(dump["values"])
        while len(self.values) >= RESERVOIR_CAP:
            self.values = self.values[::2]
            self._stride *= 2

    def summary(self):
        mean = self.total / self.count if self.count else None
        return {
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
            "mean": mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first use."""

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    # ----- instrument lookup ---------------------------------------------

    def counter(self, name):
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name):
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name):
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # ----- recording shorthand -------------------------------------------

    def inc(self, name, n=1):
        self.counter(name).inc(n)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def gauge_max(self, name, value):
        self.gauge(name).set_max(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # ----- output ---------------------------------------------------------

    def snapshot(self):
        """A plain-dict view: JSON-serialisable, sorted by name."""
        return {
            "counters": {
                name: c.value
                for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
        }

    def dump(self):
        """The registry's complete mergeable state, as plain dicts.

        Unlike :meth:`snapshot` (a human/JSON summary), a dump carries
        the histograms' exact aggregates and retained reservoirs, so a
        receiving registry can :meth:`merge` it without losing
        percentile fidelity. Dumps are what forked workers ship to the
        coordinator.
        """
        return {
            "counters": {
                name: c.value for name, c in self.counters.items()
            },
            "gauges": {
                name: g.value for name, g in self.gauges.items()
            },
            "histograms": {
                name: h.dump() for name, h in self.histograms.items()
            },
        }

    def merge(self, dump):
        """Generically fold a :meth:`dump` into this registry:
        counters add, gauges keep the max, histograms merge."""
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, hdump in dump.get("histograms", {}).items():
            self.histogram(name).merge_dump(hdump)

    def reset(self):
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
