"""Run ledger: a versioned manifest of what a CLI run actually did.

``--ledger FILE`` (or ``REPRO_LEDGER=FILE``) makes every ``repro``
command write one ``run.json`` manifest on exit: the fully *resolved*
configuration (POR/closure/jobs/wire gates — what actually ran, not
what was typed), the hash seed, a content hash of the input program
plus the pass pipeline, per-phase wall times, the final metrics
snapshot, the behaviour fingerprint, the verdict and the exit status.

Two consumers motivate the shape:

* ``repro compare A B`` diffs two manifests — configs, fingerprints,
  phases and counters, with the same ratio-symmetric delta the perf
  trajectory gate uses (:func:`ratio_delta` is the importable helper
  ``benchmarks/trajectory.py`` now reuses) — so "did this change make
  runs slower or change behaviour?" is one command over two artifacts
  instead of archaeology over logs.
* The ``content_hash`` key is deliberately the cache key shape the
  ROADMAP's validation-as-a-service item will index: module bytes +
  pass pipeline + semantic gates, hashed. A server can decide "this
  module's verdict is already known" from the manifest alone.

The module-level singleton mirrors :mod:`repro.obs`: the CLI calls
:func:`configure` before dispatching and :func:`finalize` *before*
``obs.shutdown()`` (finalize snapshots the live registry; shutdown
clears it). Manifests are written atomically
(:func:`repro.obs.status.write_atomic`), so a crashed run leaves the
previous manifest intact rather than a torn one.
"""

import hashlib
import json
import os
import sys
import time

#: Manifest schema version.
VERSION = 1

#: Env-var toggle honoured by the CLI.
ENV_LEDGER = "REPRO_LEDGER"

#: The active ledger, or ``None``.
active = None

#: Span names whose total is the run's exploration denominator, in
#: priority order (sequential explore, then the parallel entry points).
_EXPLORE_SPANS = (
    "explore",
    "parallel.explore",
    "parallel.find_race",
    "race.find",
)


def ratio_delta(prev, cur, higher_is_better=True):
    """Signed relative change, positive = improvement.

    Lower-is-better series are measured against the *new* value
    (throughput space), so a 1.5x slowdown reads as the same -33%
    whether the series tracks seconds or states/second — otherwise
    the same regression would gate differently depending on which
    unit a benchmark happened to record.

    Zero endpoints are saturated, never silently 0.0: a series
    collapsing to exactly 0 is a broken measurement (0 states/s, 0
    seconds), not an infinite speedup, so it gates as a full -100%
    regression; a series *starting* from 0 reads as the saturated
    change in the series' own direction.
    """
    if prev == 0.0 and cur == 0.0:
        return 0.0
    if cur == 0.0:
        return -1.0
    if prev == 0.0:
        return 1.0 if higher_is_better else -1.0
    if higher_is_better:
        return (cur - prev) / abs(prev)
    return (prev - cur) / abs(cur)


def fingerprint_behaviours(behaviours):
    """16-hex-digit digest of a behaviour set (sorted reprs), the same
    shape the benchmarks pin across PRs."""
    digest = hashlib.sha256()
    for rep in sorted(repr(b) for b in behaviours):
        digest.update(rep.encode())
    return digest.hexdigest()[:16]


def content_hash(path, pipeline=(), gates=()):
    """sha256 of the input program + pass pipeline + semantic gates.

    ``pipeline`` is the ordered pass/stage names; ``gates`` any extra
    strings that change meaning (lock linkage, optimize, stage). The
    validation-cache key: equal hash ⟹ revalidation is redundant.
    """
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            digest.update(handle.read())
    except OSError:
        digest.update(repr(path).encode())
    for name in pipeline:
        digest.update(b"\x00")
        digest.update(str(name).encode())
    for gate in gates:
        digest.update(b"\x01")
        digest.update(str(gate).encode())
    return digest.hexdigest()


class RunLedger:
    """Accumulates one run's facts; :meth:`finalize` writes the manifest."""

    def __init__(self, path, command, argv=None):
        self.path = str(path)
        self.command = command
        self.argv = list(argv) if argv is not None else None
        self.t0 = time.monotonic()
        self.started_at = time.time()
        self.config = {}
        self.facts = {}

    def set_config(self, **kv):
        """Record resolved configuration (what actually ran)."""
        self.config.update(kv)

    def note(self, **kv):
        """Record top-level facts: verdict, fingerprint, states, ..."""
        self.facts.update(kv)

    def document(self, exit_status, snapshot=None):
        """The manifest dict (no I/O)."""
        wall = time.monotonic() - self.t0
        doc = {
            "type": "run-manifest",
            "version": VERSION,
            "command": self.command,
            "argv": self.argv,
            "started_at": _iso(self.started_at),
            "finished_at": _iso(time.time()),
            "wall_seconds": round(wall, 6),
            "exit_status": exit_status,
            "config": dict(self.config),
            "seeds": {
                "python_hash_seed": os.environ.get("PYTHONHASHSEED"),
                "python": sys.version.split()[0],
            },
        }
        doc.update(self.facts)
        if snapshot is not None:
            doc["phases"] = phase_seconds(snapshot)
            doc["metrics"] = snapshot
            states = (
                snapshot.get("counters", {}).get(
                    "explore.states_visited"
                )
            )
            if states is not None and "states" not in doc:
                doc["states"] = states
            explore_s = _explore_seconds(doc.get("phases", {}))
            if doc.get("states") and explore_s:
                doc["states_per_second"] = round(
                    doc["states"] / explore_s, 3
                )
        return doc

    def finalize(self, exit_status, snapshot=None):
        from repro.obs.status import write_atomic

        write_atomic(self.path, self.document(exit_status, snapshot))


def _iso(epoch):
    return time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(epoch))


def phase_seconds(snapshot):
    """``{phase: total_seconds}`` from the ``span.*.seconds``
    histograms (their ``total`` field is the summed duration)."""
    out = {}
    for name, summ in (snapshot.get("histograms") or {}).items():
        if not (name.startswith("span.") and name.endswith(".seconds")):
            continue
        if summ.get("count"):
            out[name[len("span."):-len(".seconds")]] = round(
                summ.get("total") or 0.0, 6
            )
    return out


def _explore_seconds(phases):
    for name in _EXPLORE_SPANS:
        value = phases.get(name)
        if value:
            return value
    return None


# ----- the module singleton ------------------------------------------------


def configure(path, command, argv=None):
    global active
    active = RunLedger(path, command, argv=argv)
    return active


def configure_from_env(command, argv=None, environ=None):
    environ = os.environ if environ is None else environ
    path = environ.get(ENV_LEDGER)
    if path and active is None:
        configure(path, command, argv=argv)
    return active


def reset():
    global active
    active = None


def set_config(**kv):
    if active is not None:
        active.set_config(**kv)


def note(**kv):
    if active is not None:
        active.note(**kv)


def finalize(exit_status, snapshot=None):
    """Write the manifest and drop the ledger (no-op when inactive)."""
    global active
    if active is None:
        return
    try:
        active.finalize(exit_status, snapshot)
    finally:
        active = None


# ----- comparing manifests -------------------------------------------------

#: Top-level directed metrics the compare gates on.
_DIRECTED = (
    ("states_per_second", True),
    ("wall_seconds", False),
)

#: How many phase rows / counter rows the report shows.
_TOP_ROWS = 12


def load_manifest(path):
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("type") != "run-manifest":
        raise ValueError(
            "{}: not a run manifest (expected type=run-manifest)"
            .format(path)
        )
    return doc


def compare_manifests(a, b, tolerance=0.4):
    """``(report_text, regressions)`` between two manifests.

    ``regressions`` lists ``(metric, delta)`` pairs: directed metrics
    whose ratio-symmetric delta is below ``-tolerance``, plus a
    behaviour-fingerprint mismatch when the content hashes agree (same
    input, different behaviours — the one diff that is never noise).
    """
    from repro.framework.report import format_table

    lines = []
    regressions = []
    lines.append(
        "compare: {} ({})  vs  {} ({})".format(
            a.get("command", "?"), a.get("finished_at", "?"),
            b.get("command", "?"), b.get("finished_at", "?"),
        )
    )

    same_input = (
        a.get("content_hash") is not None
        and a.get("content_hash") == b.get("content_hash")
    )
    lines.append(
        "content hash: {}".format(
            "identical" if same_input else "DIFFERENT (or unrecorded)"
        )
    )
    fp_a, fp_b = a.get("fingerprint"), b.get("fingerprint")
    if fp_a is not None or fp_b is not None:
        if fp_a == fp_b:
            lines.append("behaviour fingerprint: identical "
                         "({})".format(fp_a))
        else:
            lines.append(
                "behaviour fingerprint: {} vs {} — DIFFER".format(
                    fp_a, fp_b
                )
            )
            if same_input:
                regressions.append(("fingerprint", -1.0))
    for key in ("verdict", "exit_status"):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            lines.append("{}: {} vs {} — DIFFER".format(key, va, vb))

    cfg_a = a.get("config") or {}
    cfg_b = b.get("config") or {}
    diff_keys = sorted(
        k
        for k in set(cfg_a) | set(cfg_b)
        if cfg_a.get(k) != cfg_b.get(k)
    )
    if diff_keys:
        lines.append("")
        lines.append("config differences:")
        lines.append(
            format_table(
                [
                    (k, repr(cfg_a.get(k)), repr(cfg_b.get(k)))
                    for k in diff_keys
                ],
                headers=("Key", "A", "B"),
            )
        )

    rows = []
    for metric, higher in _DIRECTED:
        va, vb = a.get(metric), b.get(metric)
        if va is None or vb is None:
            continue
        delta = ratio_delta(float(va), float(vb), higher)
        rows.append((metric, va, vb, delta, higher))
        if delta < -tolerance:
            regressions.append((metric, delta))
    ph_a = a.get("phases") or {}
    ph_b = b.get("phases") or {}
    shared_phases = sorted(
        set(ph_a) & set(ph_b),
        key=lambda k: -max(ph_a[k], ph_b[k]),
    )[:_TOP_ROWS]
    for name in shared_phases:
        delta = ratio_delta(ph_a[name], ph_b[name], False)
        rows.append(
            ("phase:{}".format(name), ph_a[name], ph_b[name], delta,
             False)
        )
    if rows:
        lines.append("")
        lines.append(
            "directed metrics (positive delta = B improves on A):"
        )
        lines.append(
            format_table(
                [
                    (
                        name,
                        _fmt(va),
                        _fmt(vb),
                        "{:+.1%}".format(delta),
                        "higher" if higher else "lower",
                    )
                    for name, va, vb, delta, higher in rows
                ],
                headers=("Metric", "A", "B", "Delta", "Better"),
            )
        )

    ctr_a = (a.get("metrics") or {}).get("counters") or {}
    ctr_b = (b.get("metrics") or {}).get("counters") or {}
    changed = [
        (k, ctr_a[k], ctr_b[k],
         ratio_delta(float(ctr_a[k]), float(ctr_b[k]), True))
        for k in set(ctr_a) & set(ctr_b)
        if ctr_a[k] != ctr_b[k]
    ]
    changed.sort(key=lambda row: -abs(row[3]))
    if changed:
        lines.append("")
        lines.append(
            "counters that changed (top {} by relative change; "
            "informational, not gated):".format(_TOP_ROWS)
        )
        lines.append(
            format_table(
                [
                    (k, _fmt(va), _fmt(vb), "{:+.1%}".format(d))
                    for k, va, vb, d in changed[:_TOP_ROWS]
                ],
                headers=("Counter", "A", "B", "Change"),
            )
        )

    lines.append("")
    if regressions:
        lines.append(
            "regressions beyond tolerance {:.0%}:".format(tolerance)
        )
        for metric, delta in regressions:
            lines.append(
                "  {}: {:+.1%}".format(metric, delta)
            )
    else:
        lines.append(
            "no regression beyond tolerance {:.0%}.".format(tolerance)
        )
    return "\n".join(lines), regressions


def _fmt(value):
    if isinstance(value, float):
        return "{:,.4f}".format(value)
    if isinstance(value, int):
        return "{:,}".format(value)
    return str(value)
