"""Heartbeat status: a live, atomically-rewritten run snapshot.

A long exploration is a black box until it exits: the metrics registry
and the trace only materialize on shutdown. ``--status FILE`` (or
``REPRO_STATUS=FILE``) makes the exploration loops rewrite a *small*
JSON document roughly once per second — states explored, frontier
depth, rolling and overall states/s, the current phase, budget consumed
against ``max_states``, an ETA to budget exhaustion, and a census of
the intern tables — so ``repro status FILE`` (or any ``cat``/``jq``)
answers "is it stuck, and will it blow its budget?" *while the run is
going* instead of post-mortem.

Design constraints, in order:

* **The hot loop pays almost nothing.** The exploration loops call
  :meth:`StatusWriter.beat` at most once every few dozen iterations
  (they keep a countdown integer); ``beat`` itself is one monotonic
  clock read and a compare until a beat is actually due. The heartbeat
  gate on the 3-thread SCALE workload is ≤2% end-to-end
  (``benchmarks/bench_pr9.py``).
* **A reader can never see a torn document.** Every beat is written to
  a same-directory temp file and :func:`os.replace`'d over the target —
  the rename is atomic on POSIX, so a concurrent poller sees either
  the previous complete document or the new complete one, never a
  prefix (tests poll mid-run and assert zero parse failures).
* **Forks compose.** The parallel explorer's workers each write their
  own ``FILE.w<wid>`` shard heartbeat (the fork-inherited parent
  writer is reset, exactly like the obs sinks), and the coordinator
  periodically merges the shard files into the main ``FILE`` with
  per-shard liveness and last-beat age — a worker that stops beating
  is visible in seconds (:func:`merge_shards`).

The module-level singleton mirrors :mod:`repro.obs`: :func:`configure`
/ :func:`configure_from_env` install :data:`writer`, :func:`reset`
drops it, and instrumented code binds ``hb = status.writer`` once per
run so the disabled path is one ``is not None`` test.
"""

import json
import os
import re
import time
from collections import deque

#: Heartbeat document schema version.
VERSION = 1

#: Env-var toggles honoured by :func:`configure_from_env` and the CLI.
ENV_STATUS = "REPRO_STATUS"
ENV_STATUS_INTERVAL = "REPRO_STATUS_INTERVAL"

#: Default seconds between beats.
DEFAULT_INTERVAL = 1.0

#: A beat older than ``max(STALE_FACTOR * interval, STALE_FLOOR)``
#: seconds is rendered with a stale warning.
STALE_FACTOR = 3.0
STALE_FLOOR = 5.0

#: Samples kept for the rolling states/s window.
_WINDOW = 20

#: The active writer, or ``None`` (the exploration loops bind this
#: once per run: ``hb = status.writer``).
writer = None


class StatusWriter:
    """Atomically rewrites one heartbeat JSON document.

    ``clock`` is injectable for tests. Sticky fields set via
    :meth:`update` (phase, budget, jobs, ...) ride on every subsequent
    beat; per-beat progress comes through :meth:`beat`/:meth:`force`.
    """

    def __init__(self, path, interval=DEFAULT_INTERVAL, wid=None,
                 clock=time.monotonic):
        self.path = str(path)
        self.interval = max(float(interval), 0.0)
        self.wid = wid
        self.clock = clock
        self.t0 = clock()
        # First beat fires immediately: a file must exist within the
        # first loop iterations, not after one full interval.
        self._next = self.t0
        self._window = deque(maxlen=_WINDOW)
        self.fields = {}
        self.beats = 0
        self.last_states = 0
        self.last_frontier = 0
        self._tmp = "{}.{}.tmp".format(self.path, os.getpid())

    # -- the hot-path surface -----------------------------------------

    def due(self):
        """True iff a beat would actually be emitted now."""
        return self.clock() >= self._next

    def update(self, **fields):
        """Merge sticky fields into every future beat (no write)."""
        self.fields.update(fields)

    def beat(self, states=None, frontier=None):
        """Emit a beat iff one is due; returns True when written."""
        now = self.clock()
        if now < self._next:
            return False
        self._next = now + self.interval
        self._emit(now, states, frontier)
        return True

    def force(self, states=None, frontier=None, **fields):
        """Emit a beat unconditionally (run start/end, phase flips)."""
        if fields:
            self.fields.update(fields)
        now = self.clock()
        self._next = now + self.interval
        self._emit(now, states, frontier)

    # -- emission -----------------------------------------------------

    def _rates(self, now, states):
        self._window.append((now, states))
        first_t, first_s = self._window[0]
        span = now - first_t
        rolling = (states - first_s) / span if span > 0 else None
        uptime = now - self.t0
        overall = states / uptime if uptime > 0 else None
        return rolling, overall

    def document(self, now, states, frontier):
        """The heartbeat dict for this instant (no I/O)."""
        if states is None:
            states = self.last_states
        if frontier is None:
            frontier = self.last_frontier
        self.last_states = states
        self.last_frontier = frontier
        rolling, overall = self._rates(now, states)
        doc = {
            "type": "heartbeat",
            "version": VERSION,
            "pid": os.getpid(),
            "time": time.time(),
            "uptime_seconds": round(now - self.t0, 6),
            "interval_seconds": self.interval,
            "beats": self.beats,
            "states": states,
            "frontier": frontier,
            "rolling_states_per_second": (
                None if rolling is None else round(rolling, 3)
            ),
            "overall_states_per_second": (
                None if overall is None else round(overall, 3)
            ),
        }
        if self.wid is not None:
            doc["wid"] = self.wid
        doc.update(self.fields)
        budget = doc.get("budget")
        if budget:
            doc["budget_used"] = round(states / budget, 6)
            if rolling and states < budget:
                doc["eta_budget_seconds"] = round(
                    (budget - states) / rolling, 3
                )
        # Cheap heap sample: per-table intern occupancy (a handful of
        # int reads once per interval, not per loop iteration).
        from repro.common import intern

        doc["intern"] = {t.name: len(t.table) for t in intern.TABLES}
        return doc

    def _emit(self, now, states, frontier, extra=None):
        doc = self.document(now, states, frontier)
        if extra:
            doc.update(extra)
        self.beats += 1
        doc["beats"] = self.beats
        write_atomic(self.path, doc, self._tmp)


def write_atomic(path, doc, tmp=None, raw=False):
    """Write ``doc`` as JSON and atomically rename it over ``path``.

    The temp file lives in the same directory (``os.replace`` must not
    cross filesystems), so a concurrent reader of ``path`` always sees
    a complete document. With ``raw=True``, ``doc`` is written as-is
    (an already-serialized string) instead of being JSON-encoded.
    """
    path = str(path)
    if tmp is None:
        tmp = "{}.{}.tmp".format(path, os.getpid())
    data = doc if raw else json.dumps(doc, sort_keys=True) + "\n"
    with open(tmp, "w") as handle:
        handle.write(data)
    os.replace(tmp, path)


def cleanup_artifacts(path):
    """Remove stale heartbeat by-products next to ``path``.

    Two leak shapes, both regression-tested:

    * a run killed between the temp write and the ``os.replace`` in
      :func:`write_atomic` leaves ``FILE.<pid>.tmp`` behind (the pid
      suffix means a *new* writer never reuses the name, so the leak
      would otherwise accumulate forever);
    * a previous run at higher ``--jobs`` leaves ``FILE.w<wid>`` shard
      heartbeats (and their own temp files) behind, and
      :func:`merge_shards` of the next, narrower run would read the
      survivors as phantom shards — stale state counts merged into a
      live status document.

    Called on main-writer init (:func:`configure`), before any shard
    writer exists, so live files are never touched. Returns the
    removed paths.
    """
    path = str(path)
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    pattern = re.compile(
        re.escape(base) + r"\.(w\d+(\.\d+\.tmp)?|\d+\.tmp)$"
    )
    removed = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        if pattern.match(name):
            stale = os.path.join(directory, name)
            try:
                os.remove(stale)
            except OSError:
                continue
            removed.append(stale)
    return removed


# ----- the module singleton ------------------------------------------------


def configure(path, interval=None, wid=None):
    """Install the process-wide :data:`writer` (idempotent per path).

    A *main* writer (``wid=None``) first sweeps stale artifacts from a
    previous run — orphaned ``.tmp`` files and leftover ``.w<wid>``
    shard heartbeats that a narrower ``--jobs`` run would otherwise
    merge as phantom shards (:func:`cleanup_artifacts`). Shard writers
    skip the sweep: by the time a worker configures its own file, the
    parent has already cleaned the neighbourhood.
    """
    global writer
    if interval is None:
        interval = interval_from_env()
    if wid is None:
        cleanup_artifacts(path)
    writer = StatusWriter(path, interval=interval, wid=wid)
    return writer


def configure_from_env(environ=None):
    """Honour ``REPRO_STATUS`` / ``REPRO_STATUS_INTERVAL``."""
    environ = os.environ if environ is None else environ
    path = environ.get(ENV_STATUS)
    if path and writer is None:
        configure(path, interval=interval_from_env(environ))
    return writer


def interval_from_env(environ=None):
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_STATUS_INTERVAL)
    if not raw:
        return DEFAULT_INTERVAL
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return DEFAULT_INTERVAL


def reset():
    """Drop the active writer (tests; fork-inherited worker state)."""
    global writer
    writer = None


def finalize(exit_status=None, phase="done"):
    """Force a final beat stamping the run's outcome, then drop the
    writer. Called by the CLI after the command returns, so the last
    document a watcher sees says ``phase: done`` instead of going
    silently stale."""
    global writer
    if writer is None:
        return
    extra = {} if exit_status is None else {"exit_status": exit_status}
    writer.force(**dict(extra, phase=phase))
    writer = None


# ----- parallel-shard merging ----------------------------------------------


def shard_path(path, wid):
    """The per-worker heartbeat file next to the main one."""
    return "{}.w{}".format(path, wid)


def load(path):
    """Parse one heartbeat/manifest JSON document (None if unreadable:
    a shard that has not beaten yet is not an error)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def merge_shards(hb, jobs, alive=None, phase="parallel"):
    """Merge the ``jobs`` shard heartbeats into ``hb``'s main file.

    ``alive`` maps wid -> bool from the coordinator's process table.
    Totals sum the shard counters; each shard row carries its last-beat
    age, so one stuck worker stands out while the totals keep moving.
    Shards that have not written yet appear with ``beats: 0``.
    """
    now_wall = time.time()
    shards = []
    total_states = 0
    total_frontier = 0
    for wid in range(jobs):
        doc = load(shard_path(hb.path, wid))
        row = {
            "wid": wid,
            "states": 0,
            "frontier": 0,
            "phase": None,
            "beats": 0,
            "age_seconds": None,
        }
        if doc is not None:
            row["states"] = doc.get("states", 0) or 0
            row["frontier"] = doc.get("frontier", 0) or 0
            row["phase"] = doc.get("phase")
            row["beats"] = doc.get("beats", 0) or 0
            beat_time = doc.get("time")
            if beat_time is not None:
                row["age_seconds"] = round(
                    max(0.0, now_wall - beat_time), 3
                )
        if alive is not None:
            row["alive"] = bool(alive.get(wid))
        shards.append(row)
        total_states += row["states"]
        total_frontier += row["frontier"]
    # Shard rows are sticky, not per-beat extras: the CLI's final
    # ``finalize`` beat must still show the per-shard table.
    hb.update(phase=phase, jobs=jobs, shards=shards)
    hb._emit(hb.clock(), total_states, total_frontier)


# ----- rendering -----------------------------------------------------------


def stale_after(doc):
    """Seconds after which this document's beat counts as stale."""
    interval = doc.get("interval_seconds") or DEFAULT_INTERVAL
    return max(STALE_FACTOR * interval, STALE_FLOOR)


def _rate(value):
    return "-" if value is None else "{:,.1f}".format(value)


def render_status(doc, now=None):
    """The heartbeat as a plain-text block (``repro status FILE``)."""
    from repro.framework.report import format_table

    if now is None:
        now = time.time()
    age = max(0.0, now - (doc.get("time") or now))
    lines = [
        "status: phase={}  pid={}  uptime {:.1f}s  "
        "(beat #{}, {:.1f}s ago)".format(
            doc.get("phase", "?"),
            doc.get("pid", "?"),
            doc.get("uptime_seconds", 0.0) or 0.0,
            doc.get("beats", 0),
            age,
        )
    ]
    if doc.get("phase") != "done" and age > stale_after(doc):
        lines.append(
            "WARNING: last beat is {:.1f}s old (interval {:.1f}s) — "
            "the run may be stuck, swapped out, or dead".format(
                age, doc.get("interval_seconds") or DEFAULT_INTERVAL
            )
        )
    progress = "progress: {:,} state(s), frontier {:,}".format(
        doc.get("states", 0) or 0, doc.get("frontier", 0) or 0
    )
    budget = doc.get("budget")
    if budget:
        progress += ", budget {:,}/{:,} ({:.1%})".format(
            doc.get("states", 0) or 0, budget,
            doc.get("budget_used", 0.0) or 0.0,
        )
        eta = doc.get("eta_budget_seconds")
        if eta is not None:
            progress += ", budget exhausted in ~{:.0f}s".format(eta)
    lines.append(progress)
    lines.append(
        "rate: {} states/s rolling, {} overall".format(
            _rate(doc.get("rolling_states_per_second")),
            _rate(doc.get("overall_states_per_second")),
        )
    )
    if doc.get("exit_status") is not None:
        lines.append("exit status: {}".format(doc["exit_status"]))
    interned = doc.get("intern")
    if interned:
        lines.append(
            "intern tables: "
            + "  ".join(
                "{}={:,}".format(name, size)
                for name, size in sorted(interned.items())
            )
        )
    shards = doc.get("shards")
    if shards:
        lines.append("")
        rows = []
        for row in shards:
            shard_age = row.get("age_seconds")
            age_s = "-" if shard_age is None else "{:.1f}s".format(
                shard_age
            )
            alive = row.get("alive")
            alive_s = "-" if alive is None else ("yes" if alive else "NO")
            rows.append(
                (
                    "w{}".format(row.get("wid")),
                    "{:,}".format(row.get("states", 0) or 0),
                    "{:,}".format(row.get("frontier", 0) or 0),
                    row.get("phase") or "-",
                    str(row.get("beats", 0)),
                    age_s,
                    alive_s,
                )
            )
        lines.append(
            format_table(
                rows,
                headers=(
                    "Shard", "States", "Frontier", "Phase", "Beats",
                    "Beat age", "Alive",
                ),
            )
        )
    return "\n".join(lines)
