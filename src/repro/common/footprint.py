"""Footprints: the sets of memory locations a step reads and writes.

A footprint ``δ = (rs, ws)`` (Fig. 4) is the central instrument of the
paper: module-local steps are labelled with footprints, data races are
conflicts between footprints of different threads (Sec. 5), and the
compilation correctness criterion requires the target's footprints to be
contained in the source's, modulo an address mapping (``FPmatch``,
Fig. 8).

Footprints are immutable and hashable, so they can label transitions in
the explored state graphs. When a footprint is "used as a set" (as the
paper does in the conflict definition), it denotes ``rs ∪ ws`` — that is
:meth:`Footprint.locs`.

Footprints are *hash-consed*: the handful of distinct ``(rs, ws)`` pairs
a program's steps produce are built millions of times during
exploration, so construction interns through a bounded table and equal
footprints are (almost always) the same object — set operations in the
race detector and edge labelling hit pointer equality. Structural
``__eq__`` remains the fallback, so a table clear never changes
semantics.
"""

from repro.common.intern import InternTable

_INTERNED = InternTable("footprint", max_size=1 << 18)


class Footprint:
    """An immutable footprint ``(rs, ws)`` of read and written addresses."""

    __slots__ = ("rs", "ws", "_hash", "_locs")

    def __new__(cls, rs=(), ws=()):
        if type(rs) is not frozenset:
            rs = frozenset(rs)
        if type(ws) is not frozenset:
            ws = frozenset(ws)
        key = (rs, ws)
        table = _INTERNED
        cached = table.table.get(key)
        if cached is not None:
            table.hits += 1
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "rs", rs)
        object.__setattr__(self, "ws", ws)
        object.__setattr__(self, "_hash", hash(key))
        if len(table.table) >= table.max_size:
            # Inlined mirror of InternTable.intern's bookkeeping.
            table.clears += 1
            table.table.clear()
        table.table[key] = self
        table.misses += 1
        if len(table.table) > table.peak_size:
            table.peak_size = len(table.table)
        return self

    def __setattr__(self, name, value):
        raise AttributeError("Footprint is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, Footprint)
            and self.rs == other.rs
            and self.ws == other.ws
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Footprint(rs={}, ws={})".format(
            sorted(self.rs), sorted(self.ws)
        )

    def locs(self):
        """All locations touched: ``rs ∪ ws`` (the paper's ``δ`` as a set).

        Cached: footprints are interned and immutable, and the conflict
        check on the race detector's hot path calls this repeatedly for
        the same handful of footprints.
        """
        try:
            return self._locs
        except AttributeError:
            locs = self.rs | self.ws
            object.__setattr__(self, "_locs", locs)
            return locs

    def union(self, other):
        """``δ ∪ δ'`` — componentwise union (Fig. 6)."""
        return Footprint(self.rs | other.rs, self.ws | other.ws)

    def subset_of(self, other):
        """``δ ⊆ δ'`` — componentwise inclusion (Fig. 6)."""
        return self.rs <= other.rs and self.ws <= other.ws

    def is_empty(self):
        return not self.rs and not self.ws

    def restricted(self, region):
        """The part of this footprint inside ``region`` (a set of addrs)."""
        region = frozenset(region)
        return Footprint(self.rs & region, self.ws & region)

    def within(self, region):
        """True iff every touched location lies in ``region``.

        This is the in-scope condition ``δ ⊆ (F ∪ S)`` of Def. 3, where
        ``region`` is the union of the module's freelist addresses and the
        shared locations.
        """
        return all(l in region for l in self.locs())


#: The empty footprint ``emp``.
EMP = Footprint()


def union_all(footprints):
    """Union of an iterable of footprints (``emp`` for the empty one)."""
    rs = set()
    ws = set()
    for fp in footprints:
        rs |= fp.rs
        ws |= fp.ws
    return Footprint(rs, ws)


def conflict(d1, d2):
    """``δ1 ⌢ δ2``: one footprint writes what the other touches (Sec. 5).

    ``(δ1.ws ∩ δ2 ≠ ∅) ∨ (δ2.ws ∩ δ1 ≠ ∅)`` where ``δ`` as a set means
    ``rs ∪ ws``. The empty/read-only fast paths skip the set algebra
    entirely — most step footprints on the exploration hot path are
    ``emp`` or pure reads, and interning makes the identity tests hit.
    """
    ws1 = d1.ws
    ws2 = d2.ws
    if not ws1 and not ws2:
        # Two pure reads (or emp) never conflict.
        return False
    if ws1 and not ws1.isdisjoint(d2.locs()):
        return True
    return bool(ws2) and not ws2.isdisjoint(d1.locs())


def disjoint(d1, d2):
    """``¬(δ1 ⌢ δ2)`` — the independence test POR builds on."""
    return not conflict(d1, d2)


def conflict_atomic(d1, atomic1, d2, atomic2):
    """``(δ1,d1) ⌢ (δ2,d2)``: conflict with atomic-bit instrumentation.

    Two conflicting footprints race unless *both* were generated inside
    atomic blocks (Sec. 5): atomic blocks are the language-level
    synchronization, so contention inside them is not a data race.
    """
    return conflict(d1, d2) and (not atomic1 or not atomic2)
