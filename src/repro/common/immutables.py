"""A small immutable, hashable mapping used inside core states.

Core states must be hashable (they are graph-node components), so their
register files / variable environments cannot be plain dicts.
:class:`ImmutableMap` wraps a dict, forbids mutation, and hashes by
content.
"""


class ImmutableMap:
    """An immutable, hashable mapping."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data=None, **kwargs):
        merged = dict(data) if data else {}
        merged.update(kwargs)
        object.__setattr__(self, "_data", merged)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("ImmutableMap is immutable")

    def __eq__(self, other):
        return isinstance(other, ImmutableMap) and self._data == other._data

    def __hash__(self):
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._data.items()))
            )
        return self._hash

    def __getitem__(self, key):
        return self._data[key]

    def __contains__(self, key):
        return key in self._data

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def __repr__(self):
        items = ", ".join(
            "{!r}: {!r}".format(k, v)
            for k, v in sorted(self._data.items(), key=lambda kv: repr(kv[0]))
        )
        return "ImmutableMap({{{}}})".format(items)

    def get(self, key, default=None):
        return self._data.get(key, default)

    def items(self):
        return self._data.items()

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def set(self, key, value):
        """A copy with ``key`` (re)bound to ``value``."""
        data = dict(self._data)
        data[key] = value
        return ImmutableMap(data)

    def update(self, other):
        """A copy with all bindings of ``other`` applied."""
        data = dict(self._data)
        data.update(
            other.items() if hasattr(other, "items") else dict(other)
        )
        return ImmutableMap(data)

    def remove(self, key):
        """A copy without ``key`` (no error if absent)."""
        data = {k: v for k, v in self._data.items() if k != key}
        return ImmutableMap(data)


EMPTY_MAP = ImmutableMap()
