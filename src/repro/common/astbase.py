"""A compact base class for immutable, hashable AST/IR nodes.

Every language in the reproduction represents programs as trees of
immutable nodes (they appear inside core states, which are graph-node
keys). Subclasses declare ``_fields``; the base provides the
constructor, structural equality, hashing and ``repr``.

Tuples passed for a field are kept as tuples; lists are converted, so
nodes stay hashable as long as leaf values are.
"""


class Node:
    """Immutable node with fields declared via ``_fields``."""

    _fields = ()
    __slots__ = ("_hash",)

    def __init__(self, *args, **kwargs):
        if len(args) > len(self._fields):
            raise TypeError(
                "{} takes {} arguments".format(
                    type(self).__name__, len(self._fields)
                )
            )
        values = dict(zip(self._fields, args))
        for name, value in kwargs.items():
            if name not in self._fields:
                raise TypeError(
                    "{} has no field {!r}".format(
                        type(self).__name__, name
                    )
                )
            if name in values:
                raise TypeError("duplicate field {!r}".format(name))
            values[name] = value
        for name in self._fields:
            value = values.get(name)
            if isinstance(value, list):
                value = tuple(value)
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError(
            "{} is immutable".format(type(self).__name__)
        )

    def _key(self):
        return (type(self).__name__,) + tuple(
            getattr(self, f) for f in self._fields
        )

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._key()))
        return self._hash

    def __repr__(self):
        args = ", ".join(
            "{}={!r}".format(f, getattr(self, f)) for f in self._fields
        )
        return "{}({})".format(type(self).__name__, args)

    def __reduce__(self):
        # Nodes live inside core states, which the parallel explorer
        # ships between worker processes; the immutability guard breaks
        # pickle's default slot-state restore, so rebuild through the
        # constructor (``_hash`` is recomputed, never transported).
        return (
            type(self),
            tuple(getattr(self, f) for f in self._fields),
        )

    def replace(self, **kwargs):
        """A copy with the given fields replaced."""
        values = {f: getattr(self, f) for f in self._fields}
        for name, value in kwargs.items():
            if name not in self._fields:
                raise TypeError(
                    "{} has no field {!r}".format(
                        type(self).__name__, name
                    )
                )
            values[name] = value
        return type(self)(**values)
