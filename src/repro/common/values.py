"""Runtime values.

The paper's value domain (Fig. 4) is ``v ::= l | ...`` — values are memory
addresses or other scalars. We realize it with three immutable value
classes:

* :class:`VInt` — a 32-bit machine integer (two's complement);
* :class:`VPtr` — a pointer carrying a flat word address, kept distinct
  from integers so that ``closed(σ)`` (Fig. 7) can trace the pointers
  stored in memory;
* :data:`VUndef` — the undefined value (CompCert's ``Vundef``), produced
  by reading uninitialized storage.

Arithmetic follows 32-bit wraparound semantics; operations on ``VUndef``
or ill-typed operands yield ``VUndef`` (as in CompCert's ``Val`` module)
rather than raising, so that interpreters can decide locally whether an
undefined result is an abort.
"""

INT_BITS = 32
INT_MOD = 1 << INT_BITS
INT_MIN = -(1 << (INT_BITS - 1))
INT_MAX = (1 << (INT_BITS - 1)) - 1


def wrap32(n):
    """Wrap an unbounded integer to signed 32-bit two's complement."""
    n &= INT_MOD - 1
    if n > INT_MAX:
        n -= INT_MOD
    return n


class Value:
    """Abstract base of runtime values. Instances are immutable."""

    __slots__ = ()

    def is_true(self):
        """Truth value for conditionals; ``None`` when undefined."""
        return None


class VInt(Value):
    """A 32-bit signed machine integer."""

    __slots__ = ("n",)

    def __init__(self, n):
        object.__setattr__(self, "n", wrap32(n))

    def __setattr__(self, name, value):
        raise AttributeError("VInt is immutable")

    def __eq__(self, other):
        return isinstance(other, VInt) and self.n == other.n

    def __hash__(self):
        return hash(("VInt", self.n))

    def __repr__(self):
        return "VInt({})".format(self.n)

    def is_true(self):
        return self.n != 0


class VPtr(Value):
    """A pointer to a flat word address ``addr``.

    Pointer arithmetic is word-granular: ``VPtr(a) + k`` points at
    ``a + k``. Addresses are plain non-negative ints (see
    :mod:`repro.common.freelist` for the address-space layout).
    """

    __slots__ = ("addr",)

    def __init__(self, addr):
        object.__setattr__(self, "addr", addr)

    def __setattr__(self, name, value):
        raise AttributeError("VPtr is immutable")

    def __eq__(self, other):
        return isinstance(other, VPtr) and self.addr == other.addr

    def __hash__(self):
        return hash(("VPtr", self.addr))

    def __repr__(self):
        return "VPtr({})".format(self.addr)

    def is_true(self):
        return True


class _VUndef(Value):
    """The undefined value. A singleton, exported as ``VUndef``."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other):
        return isinstance(other, _VUndef)

    def __hash__(self):
        return hash("VUndef")

    def __repr__(self):
        return "VUndef"


VUndef = _VUndef()


def _both_ints(a, b):
    return isinstance(a, VInt) and isinstance(b, VInt)


def add(a, b):
    """Addition: int+int, ptr+int, int+ptr. Anything else is VUndef."""
    if _both_ints(a, b):
        return VInt(a.n + b.n)
    if isinstance(a, VPtr) and isinstance(b, VInt):
        return VPtr(a.addr + b.n)
    if isinstance(a, VInt) and isinstance(b, VPtr):
        return VPtr(b.addr + a.n)
    return VUndef


def sub(a, b):
    """Subtraction: int-int, ptr-int, ptr-ptr (word distance)."""
    if _both_ints(a, b):
        return VInt(a.n - b.n)
    if isinstance(a, VPtr) and isinstance(b, VInt):
        return VPtr(a.addr - b.n)
    if isinstance(a, VPtr) and isinstance(b, VPtr):
        return VInt(a.addr - b.addr)
    return VUndef


def mul(a, b):
    if _both_ints(a, b):
        return VInt(a.n * b.n)
    return VUndef


def divs(a, b):
    """Signed division truncating toward zero (C semantics).

    Division by zero and the INT_MIN / -1 overflow case are VUndef.
    """
    if not _both_ints(a, b) or b.n == 0:
        return VUndef
    if a.n == INT_MIN and b.n == -1:
        return VUndef
    q = abs(a.n) // abs(b.n)
    if (a.n < 0) != (b.n < 0):
        q = -q
    return VInt(q)


def mods(a, b):
    """Signed remainder matching :func:`divs` (sign of the dividend)."""
    q = divs(a, b)
    if q is VUndef:
        return VUndef
    return VInt(a.n - q.n * b.n)


_CMP_TRUE = VInt(1)
_CMP_FALSE = VInt(0)


def _cmp_bool(flag):
    return _CMP_TRUE if flag else _CMP_FALSE


def cmp_eq(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n == b.n)
    if isinstance(a, VPtr) and isinstance(b, VPtr):
        return _cmp_bool(a.addr == b.addr)
    return VUndef


def cmp_ne(a, b):
    r = cmp_eq(a, b)
    if r is VUndef:
        return VUndef
    return _cmp_bool(r.n == 0)


def cmp_lt(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n < b.n)
    return VUndef


def cmp_le(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n <= b.n)
    return VUndef


def cmp_gt(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n > b.n)
    return VUndef


def cmp_ge(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n >= b.n)
    return VUndef


def bool_and(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n != 0 and b.n != 0)
    return VUndef


def bool_or(a, b):
    if _both_ints(a, b):
        return _cmp_bool(a.n != 0 or b.n != 0)
    return VUndef


def neg(a):
    if isinstance(a, VInt):
        return VInt(-a.n)
    return VUndef


def bool_not(a):
    t = a.is_true()
    if t is None:
        return VUndef
    return _cmp_bool(not t)


def shl(a, b):
    """Left shift; shift amounts outside [0, 31] are VUndef (as in C)."""
    if _both_ints(a, b) and 0 <= b.n < INT_BITS:
        return VInt(a.n << b.n)
    return VUndef


def shr(a, b):
    """Arithmetic right shift; amounts outside [0, 31] are VUndef."""
    if _both_ints(a, b) and 0 <= b.n < INT_BITS:
        return VInt(a.n >> b.n)
    return VUndef


#: Binary operator table shared by all IR interpreters. Keys are the
#: operator names used throughout the IRs.
BINOPS = {
    "+": add,
    "-": sub,
    "*": mul,
    "/": divs,
    "%": mods,
    "==": cmp_eq,
    "!=": cmp_ne,
    "<": cmp_lt,
    "<=": cmp_le,
    ">": cmp_gt,
    ">=": cmp_ge,
    "&&": bool_and,
    "||": bool_or,
    "<<": shl,
    ">>": shr,
}

#: Unary operator table shared by all IR interpreters.
UNOPS = {
    "-": neg,
    "!": bool_not,
}
