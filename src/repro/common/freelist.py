"""Freelists: reserved, disjoint address spaces for stack allocation.

A key memory-model decision of the paper (Sec. 2.3, "What memory model to
use") is to *reserve separate address spaces F for memory allocation in
different threads*, instead of CompCert's single shared ``nextblock``
counter. With disjoint freelists, an allocation by one thread cannot
affect the addresses later allocated by another, which is what makes
non-conflicting steps of different threads commute — the key lemma behind
the equivalence of preemptive and non-preemptive semantics.

Address-space layout (flat word addresses, one value per address):

* ``[0, LOCAL_BASE)`` — statically allocated globals (the shared part
  ``S`` of Fig. 5) and object-managed data;
* ``[LOCAL_BASE, ∞)`` — thread-local stack space, partitioned into
  disjoint arithmetic ranges indexed by ``(thread id, call depth)``.

Call depth enters the key because, as in Compositional CompCert, a thread
is a *stack* of module activations (cross-module calls push a new module
instance), and each activation owns its own freelist; see
:mod:`repro.semantics.world`.

The module also provides :class:`SharedCounterAllocator`, the CompCert-
style shared ``nextblock`` discipline, used only by the ABL-MEM ablation
benchmark to demonstrate why the paper had to abandon it.
"""

from repro.common.errors import SemanticsError

#: First thread-local address; everything below is shared/global space.
LOCAL_BASE = 1 << 20

#: Maximum cross-module call depth per thread.
MAX_DEPTH = 64

#: Number of addresses reserved per (thread, depth) freelist.
SLOT_SPACE = 1 << 14


class FreeList:
    """The freelist ``F`` of one module activation.

    The paper models ``F`` as an infinite set of addresses; we reserve a
    large finite arithmetic range (``SLOT_SPACE`` words), which is
    "infinite enough" for any bounded exploration, and raise
    :class:`SemanticsError` on exhaustion so overflows are never silent.

    Allocation is positional: the module's core state tracks the index
    ``N`` of the next free slot (exactly the Clight instantiation in
    Sec. 7.1), and :meth:`addr_at` maps indices to addresses
    deterministically. Determinism of allocation is what lets the
    well-definedness conditions (Def. 1, items 3-4) hold: a step's
    behaviour depends only on the read set, the write-set availability,
    and *which* addresses were already allocated from ``F``.
    """

    __slots__ = ("base", "_hash")

    def __init__(self, base):
        if base < LOCAL_BASE:
            raise SemanticsError(
                "freelist base {} overlaps global space".format(base)
            )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "_hash", hash(("FreeList", base)))

    def __setattr__(self, name, value):
        raise AttributeError("FreeList is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, FreeList) and self.base == other.base

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "FreeList(base={})".format(self.base)

    @classmethod
    def for_thread(cls, tid, depth=0):
        """The freelist owned by activation ``depth`` of thread ``tid``."""
        if not 0 <= depth < MAX_DEPTH:
            raise SemanticsError("call depth {} out of range".format(depth))
        return cls(LOCAL_BASE + (tid * MAX_DEPTH + depth) * SLOT_SPACE)

    def addr_at(self, n):
        """The ``n``-th address of this freelist."""
        if not 0 <= n < SLOT_SPACE:
            raise SemanticsError(
                "freelist exhausted (index {})".format(n)
            )
        return self.base + n

    def contains(self, addr):
        """Membership test ``addr ∈ F``."""
        return self.base <= addr < self.base + SLOT_SPACE

    def addresses(self, upto):
        """The first ``upto`` addresses, as a set (for scope checks)."""
        return frozenset(range(self.base, self.base + upto))

    def disjoint_from(self, other):
        """Freelists of distinct activations never overlap."""
        return self.base != other.base


def is_local(addr):
    """True iff ``addr`` lies in some thread's freelist space."""
    return addr >= LOCAL_BASE


def is_global(addr):
    """True iff ``addr`` lies in the shared/global space."""
    return 0 <= addr < LOCAL_BASE


class SharedCounterAllocator:
    """CompCert-style allocation: one shared ``nextblock`` counter.

    Under this discipline the address a thread receives depends on how
    many allocations *other* threads performed before it — so reordering
    non-conflicting steps of different threads changes the resulting
    state. The ABL-MEM benchmark exhibits this non-commutativity, which
    is the paper's stated reason for moving to disjoint freelists.
    """

    __slots__ = ("next_addr",)

    def __init__(self, base=LOCAL_BASE):
        self.next_addr = base

    def alloc(self):
        """Return a fresh address and advance the shared counter."""
        addr = self.next_addr
        self.next_addr += 1
        return addr
