"""The memory state ``σ``: an immutable finite partial map Addr ⇀ Val.

Matches Fig. 4's ``State``. Memories are *values*: ``store`` and ``alloc``
return new memories, leaving the old one intact, so that explored world
graphs can share states and hash them. ``load``/``store`` on unallocated
addresses return ``None`` rather than raising — whether that is a program
abort is the calling interpreter's decision.

The module also implements the footprint/state predicates of Fig. 6
(``forward``, ``LEqPre``, ``LEqPost``, ``LEffect``) and the ``closed``
predicates of Fig. 7 used by the rely/guarantee conditions.
"""

from repro.common.values import VPtr


class Memory:
    """An immutable finite partial map from addresses to values."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data=None):
        object.__setattr__(self, "_data", dict(data) if data else {})
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("Memory is immutable")

    def __eq__(self, other):
        return isinstance(other, Memory) and self._data == other._data

    def __hash__(self):
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._data.items()))
            )
        return self._hash

    def __repr__(self):
        items = ", ".join(
            "{}: {!r}".format(a, v) for a, v in sorted(self._data.items())
        )
        return "Memory({{{}}})".format(items)

    def __contains__(self, addr):
        return addr in self._data

    def __len__(self):
        return len(self._data)

    def domain(self):
        """``dom(σ)`` as a frozenset of addresses."""
        return frozenset(self._data)

    def items(self):
        return self._data.items()

    def load(self, addr):
        """The value at ``addr``, or ``None`` if unallocated."""
        return self._data.get(addr)

    def store(self, addr, value):
        """A memory with ``addr`` updated, or ``None`` if unallocated.

        Stores never allocate: writing outside ``dom(σ)`` is undefined
        behaviour to be handled by the caller (usually an abort).
        """
        if addr not in self._data:
            return None
        data = dict(self._data)
        data[addr] = value
        return Memory(data)

    def alloc(self, addr, value):
        """A memory extended with a fresh address.

        Allocation of an already-present address is ``None``: freelist
        indices make this unreachable in correct interpreters, and the
        well-definedness checker relies on it being an observable error.
        """
        if addr in self._data:
            return None
        data = dict(self._data)
        data[addr] = value
        return Memory(data)

    def alloc_range(self, addrs, value):
        """Allocate several fresh addresses at once (``None`` on clash)."""
        data = dict(self._data)
        for addr in addrs:
            if addr in data:
                return None
            data[addr] = value
        return Memory(data)

    def union(self, other):
        """Union of two memories; ``None`` if they disagree on an address.

        This is ``GE(Π)`` (Fig. 7): global environments of linked modules
        are compatible iff they agree on the overlap.
        """
        data = dict(self._data)
        for addr, val in other.items():
            if addr in data and data[addr] != val:
                return None
            data[addr] = val
        return Memory(data)

    def restrict(self, region):
        """The sub-memory on ``dom(σ) ∩ region``."""
        return Memory(
            {a: v for a, v in self._data.items() if a in region}
        )


def eq_on(m1, m2, region):
    """``σ1 ==region== σ2`` (Fig. 6).

    For every address in ``region``: either it is outside both domains,
    or in both with equal contents.
    """
    for addr in region:
        in1 = addr in m1
        in2 = addr in m2
        if in1 != in2:
            return False
        if in1 and m1.load(addr) != m2.load(addr):
            return False
    return True


def forward(m1, m2):
    """``forward(σ, σ')``: the domain may only grow (Def. 1 item 1)."""
    return m1.domain() <= m2.domain()


def leffect(m1, m2, fp, flist_addrs):
    """``LEffect(σ1, σ2, δ, F)`` (Fig. 6).

    The step leaves everything outside the write set unchanged, and any
    newly allocated addresses come from the freelist and appear in the
    write set.
    """
    unchanged = m1.domain() - fp.ws
    if not eq_on(m1, m2, unchanged):
        return False
    fresh = m2.domain() - m1.domain()
    return fresh <= (fp.ws & flist_addrs)


def leq_pre(m1, m2, fp, flist_addrs):
    """``LEqPre(σ1, σ2, δ, F)`` (Fig. 6): pre-states equivalent for δ.

    Equal contents on the read set, equal availability of the write set,
    and the same set of already-allocated freelist addresses.
    """
    if not eq_on(m1, m2, fp.rs):
        return False
    if (m1.domain() & fp.ws) != (m2.domain() & fp.ws):
        return False
    return (m1.domain() & flist_addrs) == (m2.domain() & flist_addrs)


def leq_post(m1, m2, fp, flist_addrs):
    """``LEqPost(σ1, σ2, δ, F)`` (Fig. 6): post-states equivalent."""
    if not eq_on(m1, m2, fp.ws):
        return False
    return (m1.domain() & flist_addrs) == (m2.domain() & flist_addrs)


def pointers_in(value):
    """The set of addresses a value mentions (for reachability)."""
    if isinstance(value, VPtr):
        return {value.addr}
    return set()


def closed_region(region, mem):
    """``closed(S, σ)`` (Fig. 7): pointers stored in ``S`` stay in ``S``.

    This is the no-escape condition of the rely/guarantee setup: shared
    memory must not leak pointers into any module's local freelist space,
    or another thread could reach and mutate private memory.
    """
    for addr in region:
        val = mem.load(addr)
        if val is None:
            continue
        for target in pointers_in(val):
            if target not in region:
                return False
    return True


def closed(mem):
    """``closed(σ)``: no wild pointers — ``closed(dom(σ), σ)``."""
    return closed_region(mem.domain(), mem)
