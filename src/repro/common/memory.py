"""The memory state ``σ``: an immutable finite partial map Addr ⇀ Val.

Matches Fig. 4's ``State``. Memories are *values*: ``store`` and ``alloc``
return new memories, leaving the old one intact, so that explored world
graphs can share states and hash them. ``load``/``store`` on unallocated
addresses return ``None`` rather than raising — whether that is a program
abort is the calling interpreter's decision.

Representation (hot-path machinery): a memory is a shared *base* dict
plus a small private *overlay* of updates. ``store``/``alloc`` copy only
the overlay (bounded by :data:`OVERLAY_MAX` entries before compaction),
so a silent step is O(overlay) instead of O(|σ|), and sibling states in
the explored graph share their base structurally. The hash is *Zobrist
style*: an XOR of per-``(addr, value)`` codes maintained incrementally
on every update — O(1) per step, order- and history-independent, where
the previous representation rehashed ``frozenset(items)`` from scratch.
Value-identical stores return ``self`` unchanged. None of this is
observable: ``__eq__``/``__hash__``/``items`` behave exactly as for the
plain-dict representation (the property tests in
``tests/common/test_memory_sharing.py`` check this against a model).

The module also implements the footprint/state predicates of Fig. 6
(``forward``, ``LEqPre``, ``LEqPost``, ``LEffect``) and the ``closed``
predicates of Fig. 7 used by the rely/guarantee conditions.
"""

from repro.common.values import VPtr

#: Overlay entries beyond which ``store``/``alloc`` compact into a
#: fresh base dict. Small enough that overlay copies stay cheap, large
#: enough that runs of silent steps share one base.
OVERLAY_MAX = 8

#: 61-bit mask: keeps XOR-combined hashes inside CPython's Py_hash_t
#: so ``__hash__`` never pays a big-int reduction.
_HASH_MASK = (1 << 61) - 1

#: Hash of the empty memory (arbitrary non-zero seed).
_EMPTY_HASH = 0x0A5D2F346BAEF672 & _HASH_MASK

_MISSING = object()

#: Shared empty overlay. Overlays are never mutated after construction,
#: so compacted memories can all alias this one dict.
_NO_OVER = {}


class _MemStats:
    """Plain-int counters (no obs lookups on the hot path); the explorer
    publishes per-run deltas as ``memory.nodes_reused`` etc."""

    __slots__ = ("nodes_reused", "compactions")

    def __init__(self):
        self.nodes_reused = 0
        self.compactions = 0


STATS = _MemStats()


def _mix(h):
    """SplitMix64-style finalizer: spreads ``hash((addr, value))`` so
    XOR-combining per-entry codes doesn't cancel structure."""
    h &= 0xFFFFFFFFFFFFFFFF
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 31
    return h & _HASH_MASK


def entry_code(addr, value):
    """The Zobrist code of one ``(addr, value)`` binding."""
    return _mix(hash((addr, value)))


class Memory:
    """An immutable finite partial map from addresses to values."""

    __slots__ = ("_base", "_over", "_size", "_hash", "_merged")

    def __init__(self, data=None):
        base = dict(data) if data else {}
        h = _EMPTY_HASH
        for item in base.items():
            h ^= _mix(hash(item))
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "_over", _NO_OVER)
        object.__setattr__(self, "_size", len(base))
        object.__setattr__(self, "_hash", h)

    @classmethod
    def _make(cls, base, over, size, h):
        """Internal constructor from pre-validated parts (no rehash)."""
        self = object.__new__(cls)
        object.__setattr__(self, "_base", base)
        object.__setattr__(self, "_over", over)
        object.__setattr__(self, "_size", size)
        object.__setattr__(self, "_hash", h)
        return self

    def __setattr__(self, name, value):
        raise AttributeError("Memory is immutable")

    def _m(self):
        """The merged ``{addr: value}`` view (cached once built)."""
        over = self._over
        if not over:
            return self._base
        try:
            return self._merged
        except AttributeError:
            merged = dict(self._base)
            merged.update(over)
            object.__setattr__(self, "_merged", merged)
            return merged

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Memory):
            return False
        if self._size != other._size or self._hash != other._hash:
            return False
        return self._m() == other._m()

    def __hash__(self):
        return self._hash

    def __repr__(self):
        items = ", ".join(
            "{}: {!r}".format(a, v) for a, v in sorted(self._m().items())
        )
        return "Memory({{{}}})".format(items)

    def __contains__(self, addr):
        return addr in self._over or addr in self._base

    def __len__(self):
        return self._size

    def domain(self):
        """``dom(σ)`` as a frozenset of addresses."""
        return frozenset(self._m())

    def items(self):
        return self._m().items()

    def load(self, addr):
        """The value at ``addr``, or ``None`` if unallocated."""
        over = self._over
        if over:
            value = over.get(addr, _MISSING)
            if value is not _MISSING:
                return value
        return self._base.get(addr)

    def store(self, addr, value):
        """A memory with ``addr`` updated, or ``None`` if unallocated.

        Stores never allocate: writing outside ``dom(σ)`` is undefined
        behaviour to be handled by the caller (usually an abort).
        """
        over = self._over
        old = over.get(addr, _MISSING)
        if old is _MISSING:
            old = self._base.get(addr, _MISSING)
            if old is _MISSING:
                return None
        if old == value:
            # Value-identical store: the abstract state is unchanged.
            STATS.nodes_reused += 1
            return self
        h = (
            self._hash
            ^ _mix(hash((addr, old)))
            ^ _mix(hash((addr, value)))
        )
        if len(over) < OVERLAY_MAX:
            new_over = dict(over)
            new_over[addr] = value
            STATS.nodes_reused += 1
            return Memory._make(self._base, new_over, self._size, h)
        merged = dict(self._base)
        merged.update(over)
        merged[addr] = value
        STATS.compactions += 1
        return Memory._make(merged, _NO_OVER, self._size, h)

    def alloc(self, addr, value):
        """A memory extended with a fresh address.

        Allocation of an already-present address is ``None``: freelist
        indices make this unreachable in correct interpreters, and the
        well-definedness checker relies on it being an observable error.
        """
        over = self._over
        if addr in over or addr in self._base:
            return None
        h = self._hash ^ _mix(hash((addr, value)))
        if len(over) < OVERLAY_MAX:
            new_over = dict(over)
            new_over[addr] = value
            STATS.nodes_reused += 1
            return Memory._make(self._base, new_over, self._size + 1, h)
        merged = dict(self._m())
        merged[addr] = value
        STATS.compactions += 1
        return Memory._make(merged, _NO_OVER, self._size + 1, h)

    def alloc_range(self, addrs, value):
        """Allocate several fresh addresses at once (``None`` on clash)."""
        data = dict(self._m())
        h = self._hash
        for addr in addrs:
            if addr in data:
                return None
            data[addr] = value
            h ^= _mix(hash((addr, value)))
        return Memory._make(data, _NO_OVER, len(data), h)

    def union(self, other):
        """Union of two memories; ``None`` if they disagree on an address.

        This is ``GE(Π)`` (Fig. 7): global environments of linked modules
        are compatible iff they agree on the overlap.
        """
        data = dict(self._m())
        h = self._hash
        for addr, val in other.items():
            got = data.get(addr, _MISSING)
            if got is not _MISSING:
                if got != val:
                    return None
                continue
            data[addr] = val
            h ^= _mix(hash((addr, val)))
        return Memory._make(data, _NO_OVER, len(data), h)

    def restrict(self, region):
        """The sub-memory on ``dom(σ) ∩ region``."""
        return Memory(
            {a: v for a, v in self._m().items() if a in region}
        )

    # -- transport (repro.common.serialize) ---------------------------

    def delta_parts(self):
        """The ``(base, overlay)`` split behind this memory.

        The delta transport mirrors the in-memory representation: the
        base dict is shared structurally between sibling states (ship
        it once per channel), the overlay is the small private diff
        (ship it every time). Both are exposed as-is — callers must
        treat them as immutable.
        """
        return self._base, self._over

    @classmethod
    def rebase(cls, base, base_size, base_hash, over_items):
        """Rebuild a memory as ``base`` + ``overlay`` without rehashing
        the base.

        ``base_size``/``base_hash`` describe the *base alone* and must
        come from a locally-validated memory (the transport recomputes
        them when a base first arrives — they never cross the wire).
        The overlay folds in incrementally, exactly as ``store`` /
        ``alloc`` maintain the Zobrist hash; an overlay entry equal to
        its base binding stays in the overlay but contributes no hash
        change (``store`` can produce such overlays by writing a value
        back).
        """
        h = base_hash
        size = base_size
        over = {}
        for addr, value in over_items:
            old = base.get(addr, _MISSING)
            if old is _MISSING:
                size += 1
                h ^= _mix(hash((addr, value)))
            elif old != value:
                h ^= _mix(hash((addr, old)))
                h ^= _mix(hash((addr, value)))
            over[addr] = value
        if not over:
            over = _NO_OVER
        return cls._make(base, over, size, h)


def eq_on(m1, m2, region):
    """``σ1 ==region== σ2`` (Fig. 6).

    For every address in ``region``: either it is outside both domains,
    or in both with equal contents.
    """
    for addr in region:
        in1 = addr in m1
        in2 = addr in m2
        if in1 != in2:
            return False
        if in1 and m1.load(addr) != m2.load(addr):
            return False
    return True


def forward(m1, m2):
    """``forward(σ, σ')``: the domain may only grow (Def. 1 item 1)."""
    return m1.domain() <= m2.domain()


def leffect(m1, m2, fp, flist_addrs):
    """``LEffect(σ1, σ2, δ, F)`` (Fig. 6).

    The step leaves everything outside the write set unchanged, and any
    newly allocated addresses come from the freelist and appear in the
    write set.
    """
    unchanged = m1.domain() - fp.ws
    if not eq_on(m1, m2, unchanged):
        return False
    fresh = m2.domain() - m1.domain()
    return fresh <= (fp.ws & flist_addrs)


def leq_pre(m1, m2, fp, flist_addrs):
    """``LEqPre(σ1, σ2, δ, F)`` (Fig. 6): pre-states equivalent for δ.

    Equal contents on the read set, equal availability of the write set,
    and the same set of already-allocated freelist addresses.
    """
    if not eq_on(m1, m2, fp.rs):
        return False
    if (m1.domain() & fp.ws) != (m2.domain() & fp.ws):
        return False
    return (m1.domain() & flist_addrs) == (m2.domain() & flist_addrs)


def leq_post(m1, m2, fp, flist_addrs):
    """``LEqPost(σ1, σ2, δ, F)`` (Fig. 6): post-states equivalent."""
    if not eq_on(m1, m2, fp.ws):
        return False
    return (m1.domain() & flist_addrs) == (m2.domain() & flist_addrs)


def pointers_in(value):
    """The set of addresses a value mentions (for reachability)."""
    if isinstance(value, VPtr):
        return {value.addr}
    return set()


def closed_region(region, mem):
    """``closed(S, σ)`` (Fig. 7): pointers stored in ``S`` stay in ``S``.

    This is the no-escape condition of the rely/guarantee setup: shared
    memory must not leak pointers into any module's local freelist space,
    or another thread could reach and mutate private memory.
    """
    for addr in region:
        val = mem.load(addr)
        if val is None:
            continue
        for target in pointers_in(val):
            if target not in region:
                return False
    return True


def closed(mem):
    """``closed(σ)``: no wild pointers — ``closed(dom(σ), σ)``."""
    return closed_region(mem.domain(), mem)
