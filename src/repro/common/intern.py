"""Hash-consing intern tables for the hot-path state machinery.

State-space exploration allocates millions of small immutable objects
(worlds, frames, memories, footprints), and the same abstract state is
rebuilt over and over along different interleavings. Interning maps each
freshly built object to a canonical representative, so

* dict/set lookups in the explorer (``graph.ids``, dedup sets) hit the
  pointer-equality fast path CPython's ``dict`` takes before calling
  ``__eq__``;
* ``__eq__`` implementations short-circuit on ``self is other``;
* cached lazy hashes (``_hash`` slots) are shared instead of recomputed
  per duplicate.

Interning is *best effort*: tables are bounded (cleared wholesale when
they exceed ``max_size``), and structural ``__eq__``/``__hash__`` remain
the source of truth, so a cleared table never affects semantics — only
the constant factor.

Hit/miss/clear counts are plain attribute increments (no
observability-layer lookups on the hot path); :func:`stats` and
:func:`totals` expose them, and the explorer publishes per-run deltas
through ``repro.obs`` as the aggregate ``intern.hits`` /
``intern.misses`` counters plus per-table ``intern.table.<name>.*``
metrics. ``peak_size`` survives wholesale clears — it records the
largest population a table ever held, which is what the heap census
(:mod:`repro.obs.heap`) needs to reason about occupancy honestly.
Callers that manipulate ``table`` directly for speed (the inlined
intern paths in :mod:`repro.semantics.world`) must maintain ``clears``
and ``peak_size`` at their own clear/insert sites.
"""

from collections import namedtuple

#: Every table ever created, for :func:`stats` / :func:`clear_all`.
TABLES = []

#: The aggregate counters :func:`totals` returns.
InternTotals = namedtuple(
    "InternTotals", ("hits", "misses", "clears", "peak_size")
)


class InternTable:
    """A bounded canonicalization table: ``intern(x)`` returns the first
    object structurally equal to ``x`` that was interned, or ``x``."""

    __slots__ = (
        "name", "table", "hits", "misses", "clears", "peak_size",
        "max_size",
    )

    def __init__(self, name, max_size=1 << 20):
        self.name = name
        self.table = {}
        self.hits = 0
        self.misses = 0
        self.clears = 0
        self.peak_size = 0
        self.max_size = max_size
        TABLES.append(self)

    def intern(self, obj):
        table = self.table
        got = table.get(obj)
        if got is not None:
            self.hits += 1
            return got
        if len(table) >= self.max_size:
            # Wholesale clear: O(1) amortized, and future duplicates are
            # simply re-canonicalized against fresh representatives.
            self.clears += 1
            table.clear()
        table[obj] = obj
        self.misses += 1
        if len(table) > self.peak_size:
            self.peak_size = len(table)
        return obj

    def __len__(self):
        return len(self.table)

    def __repr__(self):
        return "InternTable({}, size={}, hits={}, misses={})".format(
            self.name, len(self.table), self.hits, self.misses
        )

    def clear(self):
        """Drop all entries (counters are kept — they are cumulative;
        explicit clears are not counted in ``clears``, which tracks
        capacity evictions only)."""
        self.table.clear()


def stats():
    """Per-table cumulative counters:
    ``{name: {hits, misses, size, clears, peak_size, max_size}}``."""
    return {
        t.name: {
            "hits": t.hits,
            "misses": t.misses,
            "size": len(t),
            "clears": t.clears,
            "peak_size": t.peak_size,
            "max_size": t.max_size,
        }
        for t in TABLES
    }


def totals():
    """:class:`InternTotals` summed over every table (``peak_size`` is
    the summed per-table peaks: the worst-case combined population)."""
    hits = 0
    misses = 0
    clears = 0
    peak = 0
    for t in TABLES:
        hits += t.hits
        misses += t.misses
        clears += t.clears
        peak += t.peak_size
    return InternTotals(hits, misses, clears, peak)


def clear_all():
    """Empty every table (for tests and long-running processes)."""
    for t in TABLES:
        t.clear()
