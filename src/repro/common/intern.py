"""Hash-consing intern tables for the hot-path state machinery.

State-space exploration allocates millions of small immutable objects
(worlds, frames, memories, footprints), and the same abstract state is
rebuilt over and over along different interleavings. Interning maps each
freshly built object to a canonical representative, so

* dict/set lookups in the explorer (``graph.ids``, dedup sets) hit the
  pointer-equality fast path CPython's ``dict`` takes before calling
  ``__eq__``;
* ``__eq__`` implementations short-circuit on ``self is other``;
* cached lazy hashes (``_hash`` slots) are shared instead of recomputed
  per duplicate.

Interning is *best effort*: tables are bounded (cleared wholesale when
they exceed ``max_size``), and structural ``__eq__``/``__hash__`` remain
the source of truth, so a cleared table never affects semantics — only
the constant factor.

Hit/miss counts are plain attribute increments (no observability-layer
lookups on the hot path); :func:`stats` and :func:`totals` expose them,
and the explorer publishes per-run deltas through ``repro.obs`` as the
``intern.hits`` / ``intern.misses`` counters.
"""

#: Every table ever created, for :func:`stats` / :func:`clear_all`.
TABLES = []


class InternTable:
    """A bounded canonicalization table: ``intern(x)`` returns the first
    object structurally equal to ``x`` that was interned, or ``x``."""

    __slots__ = ("name", "table", "hits", "misses", "max_size")

    def __init__(self, name, max_size=1 << 20):
        self.name = name
        self.table = {}
        self.hits = 0
        self.misses = 0
        self.max_size = max_size
        TABLES.append(self)

    def intern(self, obj):
        table = self.table
        got = table.get(obj)
        if got is not None:
            self.hits += 1
            return got
        if len(table) >= self.max_size:
            # Wholesale clear: O(1) amortized, and future duplicates are
            # simply re-canonicalized against fresh representatives.
            table.clear()
        table[obj] = obj
        self.misses += 1
        return obj

    def __len__(self):
        return len(self.table)

    def __repr__(self):
        return "InternTable({}, size={}, hits={}, misses={})".format(
            self.name, len(self.table), self.hits, self.misses
        )

    def clear(self):
        """Drop all entries (counters are kept — they are cumulative)."""
        self.table.clear()


def stats():
    """Per-table ``{name: {hits, misses, size}}`` (cumulative counters)."""
    return {
        t.name: {"hits": t.hits, "misses": t.misses, "size": len(t)}
        for t in TABLES
    }


def totals():
    """``(hits, misses)`` summed over every table."""
    hits = 0
    misses = 0
    for t in TABLES:
        hits += t.hits
        misses += t.misses
    return hits, misses


def clear_all():
    """Empty every table (for tests and long-running processes)."""
    for t in TABLES:
        t.clear()
