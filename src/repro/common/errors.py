"""Exception hierarchy for the reproduction.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """A source program (MiniC or CImp) failed to parse.

    Carries an optional 1-based ``line`` attribute for diagnostics.
    """

    def __init__(self, message, line=None):
        if line is not None:
            message = "line {}: {}".format(line, message)
        super().__init__(message)
        self.line = line


class TypeCheckError(ReproError):
    """A MiniC program is syntactically valid but ill-typed."""


class CompileError(ReproError):
    """A compiler pass could not translate its input module."""


class SemanticsError(ReproError):
    """An interpreter reached a state that the semantics does not define.

    This indicates a bug in the library (or an IR invariant violated by a
    pass), *not* a program abort: program-level aborts are first-class
    semantic outcomes (``StepAbort``), never exceptions.
    """


class ValidationError(ReproError):
    """A translation-validation obligation failed.

    Raised by the footprint-preserving simulation checker when a compiled
    module does not simulate its source, with a description of the first
    violated obligation (mismatched message, footprint out of scope,
    ``FPmatch`` failure, ...).
    """
