"""Cross-process serialization of worlds and runtime state.

The parallel explorer (:mod:`repro.semantics.parallel`) partitions the
frontier across worker processes and ships cross-shard successor worlds
as pickled batches. Plain pickling fails on this codebase on purpose:
every runtime-state class blocks ``__setattr__`` (worlds are graph-node
keys and must stay immutable), so the default slot-state restore path
raises ``<class> is immutable`` on load. This module registers
``copyreg`` reducers that rebuild each class through its blessed
constructor instead:

* :class:`~repro.semantics.world.World` / ``Frame`` go through their
  ``make`` classmethods, so decoded worlds re-enter the receiver's
  intern tables and regain pointer-equality fast paths;
* :class:`~repro.common.memory.Memory` rebuilds from its contents (the
  Zobrist hash is recomputed or folded locally, never trusted from the
  wire) and :class:`~repro.common.footprint.Footprint` re-interns
  through its hash-consing ``__new__``;
* value/message singletons (``VUndef``, ``TAU``, ``EntAtom``,
  ``ExtAtom``) decode to the receiver's singletons;
* language cores and frames restore via ``object.__setattr__`` with
  cached ``_hash`` slots dropped (they all recompute lazily), so a
  decoded core can never carry a stale hash.

Since schema version 2 the transport is *stateful per channel*. A
directed channel (one sender, one receiver, FIFO delivery — exactly
what a ``multiprocessing.Queue`` pair gives the parallel explorer) owns
three layers of shared state, each of which turns repeated payload into
near-zero wire bytes:

* **A persistent pickle memo.** One long-lived :class:`ChannelEncoder`
  keeps one ``Pickler`` whose memo survives across ``encode`` calls,
  and the matching :class:`ChannelDecoder` keeps the mirror-image
  ``Unpickler``; hash-consed frames, cores and static code containers
  cross the channel *once*, then travel as one-opcode memo references.
  The memo tables on both ends grow in lock-step (pickle's ``MEMOIZE``
  indexes count from each end's table length), which is why a channel
  is strictly point-to-point: feeding one decoder streams from two
  encoders would silently resolve memo indexes to the wrong objects.
* **A memory base cache.** ``Memory`` is already a delta structure (a
  shared base dict plus a small overlay — see
  :mod:`repro.common.memory`); the wire format mirrors it. The first
  time a base dict crosses a channel the encoder registers it under a
  small integer token and ships the full contents
  (``full_sends``/``base_registrations``); every later memory sharing
  that base ships ``(token, overlay_items)`` only (``delta_hits``).
  The decoder recomputes the base's Zobrist hash locally when it
  arrives and *folds* overlays in incrementally
  (:meth:`~repro.common.memory.Memory.rebase`) — hashes never cross
  the wire.
* **Packed world records.** Even with a shared memo, a steady-state
  world costs ~55 wire bytes: pickle references into a long-lived memo
  are 5-byte ``LONG_BINGET`` opcodes, and a world needs several (its
  stack tuples, bits, memory, restore callable) plus tuple/reduce
  framing. :meth:`ChannelEncoder.encode_worlds` drops below that floor
  by not pickling world *structure* at all: each channel keeps
  equality-keyed component tables (threads tuple, bits tuple, memory),
  and a batch of worlds ships as one byte string of varint table
  indexes — 4-8 bytes per steady-state world — plus a ``novel`` list
  holding only the components the receiver has not seen (those still
  go through the persistent pickler, so a novel memory delta-encodes
  against the base cache as above). The novel list is untagged: the
  encoder assigns a component index ``len(table)`` exactly when it is
  novel, so the decoder rebuilds the assignment positionally — an
  index equal to the current table size consumes the next novel item.
* **A channel epoch.** Channel state cannot grow forever; when the
  encoder is over budget (:meth:`ChannelEncoder.over_budget`, bounded
  by :data:`CHANNEL_BYTES_LIMIT` / :data:`CHANNEL_BASES_LIMIT` /
  :data:`CHANNEL_SENT_LIMIT`) the sender calls
  :meth:`~ChannelEncoder.reset`, which drops the memo, the base cache
  and the send memo and bumps the **epoch**. Every message carries the
  epoch out-of-band; the decoder resets itself on the first message of
  a newer epoch (and a ``reset`` control message lets the receiver
  drop its state promptly) and rejects messages from an older epoch
  (:class:`SerializationError`), so a torn reset can corrupt nothing.

A third cost saver needs no per-channel state at all: the **static
segment**. The parallel explorer forks its workers, so modules,
functions and the initial worlds/cores are *pointer-identical* in
every process. :func:`install_static_table` (called before forking)
pins them into an indexed table; the reducers encode any table member
as its index and the receiver resolves the index to its own inherited
object — static code never crosses the wire at all.

Batches travel in a versioned envelope, mirroring the witness
artifact's schema discipline (:data:`repro.semantics.witness
.WITNESS_SCHEMA_VERSION`): a version tag guards layout changes (v2 is
the stateful channel format; v1 full-dump batches are rejected) and a
*hash-seed probe* guards transport between interpreters with different
string-hash seeds — world identity is hash-partitioned, so decoding
into a differently-seeded interpreter would silently scramble shard
ownership. The parallel explorer forks its workers (seed inherited),
making the probe a tripwire, not a tax; batches are transport-only and
must never be persisted.

Setting :data:`ENV_STATELESS` (``REPRO_WIRE_STATELESS=1``) degrades
every channel to the schema-v1 behaviour — a fresh pickler per
message, no deltas, no static refs. It exists for benchmarking the
transport against its former self (``benchmarks/bench_pr7.py``), not
for production use.
"""

import copyreg
import io
import os
import pickle
import time

from repro.common import footprint as _footprint
from repro.common import freelist as _freelist
from repro.common import immutables as _immutables
from repro.common import memory as _memory
from repro.common import values as _values
from repro.lang import messages as _messages
from repro.lang import steps as _steps

#: Version tag of the batch envelope (bump on layout changes).
#: v2: stateful channel format — persistent memos, memory deltas
#: against registered bases, static-segment references.
SERIAL_SCHEMA_VERSION = 2

#: Detects decoding under a different string-hash seed (see module
#: docstring): equal across fork, different across unrelated
#: interpreter launches unless ``PYTHONHASHSEED`` is pinned.
_SEED_PROBE = hash("repro.common.serialize:seed-probe")

#: Environment switch: degrade channels to the stateless v1 behaviour
#: (fresh pickler per message, no deltas/static refs). Benchmark-only.
ENV_STATELESS = "REPRO_WIRE_STATELESS"

#: Encoded bytes after which a sender resets its channel epoch.
CHANNEL_BYTES_LIMIT = 64 << 20
#: Registered memory bases after which a sender resets its channel.
CHANNEL_BASES_LIMIT = 8192
#: Send-memo entries after which a sender resets its channel.
CHANNEL_SENT_LIMIT = 1 << 18


class SerializationError(Exception):
    """A batch could not be encoded or decoded."""


def _stateless_default():
    return bool(os.environ.get(ENV_STATELESS))


# ----- the static segment ---------------------------------------------------

#: The pre-shared static segment: objects pointer-identical in every
#: process of one parallel run (fork-inherited modules, functions,
#: initial worlds/cores). Encoded as table indexes, resolved to the
#: receiver's own inherited objects. Installed by the coordinator
#: *before* forking; empty outside a parallel run.
_STATIC_OBJS = []
_STATIC_IDS = {}


def install_static_table(objs):
    """Pin ``objs`` as the static segment; returns the table size.

    Must run before the workers fork (both ends resolve indexes
    against their own copy of this table) and before any channel
    encodes its first message.
    """
    global _STATIC_OBJS, _STATIC_IDS
    _STATIC_OBJS = list(objs)
    _STATIC_IDS = {id(obj): i for i, obj in enumerate(_STATIC_OBJS)}
    return len(_STATIC_OBJS)


def clear_static_table():
    """Drop the static segment (end of a parallel run)."""
    global _STATIC_OBJS, _STATIC_IDS
    _STATIC_OBJS = []
    _STATIC_IDS = {}


def collect_static_objects(ctx, initial_worlds=()):
    """The fork-inherited objects worth pinning for one exploration:
    every module's code container and functions, plus the initial
    worlds with their frames, cores, freelists and shared memory.

    Containers only — their internals (AST nodes, instruction lists)
    ride along for free: a static ref short-circuits the whole
    subtree.
    """
    objs = []
    seen = set()

    def add(obj):
        if obj is None:
            return
        key = id(obj)
        if key not in seen:
            seen.add(key)
            objs.append(obj)

    for decl in getattr(ctx, "modules", None) or ():
        code = getattr(decl, "code", None)
        add(code)
        functions = getattr(code, "functions", None)
        if isinstance(functions, dict):
            for fn in functions.values():
                add(fn)
    for world in initial_worlds:
        add(world)
        add(world.mem)
        for stack in world.threads:
            for frame in stack:
                add(frame)
                add(frame.core)
                add(frame.flist)
    return objs


def _static_ref(idx):
    try:
        return _STATIC_OBJS[idx]
    except IndexError:
        raise SerializationError(
            "static segment reference #{} outside the installed table "
            "({} object(s)): sender and receiver do not share a "
            "fork-inherited static segment".format(
                idx, len(_STATIC_OBJS)
            )
        ) from None


# ----- reducers -------------------------------------------------------------


def _restore_slots(cls, items):
    """Rebuild a setattr-blocking slots instance from ``(name, value)``
    pairs, bypassing the immutability guard the way the constructors do."""
    obj = object.__new__(cls)
    for name, value in items:
        object.__setattr__(obj, name, value)
    return obj


def _all_slots(cls):
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


#: Lazily-recomputed cache slots that must not cross the wire.
_CACHE_SLOTS = frozenset({"_hash", "_locs", "_merged"})


def register_slots(cls):
    """Register a generic reducer: all slots except cached ones.

    Only sound for classes whose cached slots are recomputed lazily via
    the ``try/except AttributeError`` pattern (every language core and
    frame — see e.g. ``CImpCore.__hash__``). Static-segment members
    reduce to their table index instead (one dict lookup, paid only on
    an object's first encode per channel epoch — pickle's memo handles
    repeats).
    """
    slots = tuple(n for n in _all_slots(cls) if n not in _CACHE_SLOTS)

    def _reduce(obj, _cls=cls, _slots=slots):
        idx = _STATIC_IDS.get(id(obj))
        if idx is not None:
            return _static_ref, (idx,)
        items = []
        for name in _slots:
            try:
                items.append((name, getattr(obj, name)))
            except AttributeError:
                pass
        return _restore_slots, (_cls, tuple(items))

    copyreg.pickle(cls, _reduce)


def register_constructor(cls, fields):
    """Register a reducer that calls ``cls(*fields)`` on decode."""

    def _reduce(obj, _cls=cls, _fields=tuple(fields)):
        idx = _STATIC_IDS.get(id(obj))
        if idx is not None:
            return _static_ref, (idx,)
        return _cls, tuple(getattr(obj, f) for f in _fields)

    copyreg.pickle(cls, _reduce)


def register_singleton(cls):
    """Register a reducer for a ``__new__``-singleton class."""
    copyreg.pickle(cls, lambda obj, _cls=cls: (_cls, ()))


def _restore_world(threads, cur, bits, mem):
    from repro.semantics.world import World

    return World.make(threads, cur, bits, mem)


def _restore_frame(mod_idx, flist, core):
    from repro.semantics.world import Frame

    return Frame.make(mod_idx, flist, core)


def _reduce_world(w):
    idx = _STATIC_IDS.get(id(w))
    if idx is not None:
        return _static_ref, (idx,)
    return _restore_world, (w.threads, w.cur, w.bits, w.mem)


def _reduce_frame(f):
    idx = _STATIC_IDS.get(id(f))
    if idx is not None:
        return _static_ref, (idx,)
    return _restore_frame, (f.mod_idx, f.flist, f.core)


def _restore_memory(items):
    return _memory.Memory(dict(items))


def _reduce_memory(m):
    """Delta-encode against the active channel's base cache.

    Outside a channel encode (``_CURRENT_ENCODER`` is None — plain
    ``copy.deepcopy`` or a stateless channel) memories dump in full,
    exactly the v1 format.
    """
    idx = _STATIC_IDS.get(id(m))
    if idx is not None:
        return _static_ref, (idx,)
    enc = _CURRENT_ENCODER
    if enc is None:
        return _restore_memory, (tuple(m.items()),)
    base, over = m.delta_parts()
    token = enc._bases.get(id(base))
    if token is None:
        token = len(enc._base_keep)
        enc._bases[id(base)] = token
        enc._base_keep.append(base)
        enc.base_registrations += 1
        enc.full_sends += 1
        return (
            _restore_memory_base,
            (token, tuple(base.items()), tuple(over.items())),
        )
    enc.delta_hits += 1
    return _restore_memory_delta, (token, tuple(over.items()))


def _restore_memory_base(token, base_items, over_items):
    dec = _CURRENT_DECODER
    if dec is None:
        raise SerializationError(
            "memory base registration outside a channel decode"
        )
    return dec.define_base(token, base_items, over_items)


def _restore_memory_delta(token, over_items):
    dec = _CURRENT_DECODER
    if dec is None:
        raise SerializationError(
            "memory delta outside a channel decode"
        )
    return dec.apply_delta(token, over_items)


def _registered():
    """Install every reducer once (idempotent; keyed on World)."""
    from repro.semantics import world as _world

    if _world.World in copyreg.dispatch_table:
        return

    copyreg.pickle(_world.World, _reduce_world)
    copyreg.pickle(_world.Frame, _reduce_frame)
    copyreg.pickle(_memory.Memory, _reduce_memory)
    copyreg.pickle(
        _footprint.Footprint,
        lambda fp: (_footprint.Footprint, (tuple(fp.rs), tuple(fp.ws))),
    )
    register_constructor(_freelist.FreeList, ("base",))
    copyreg.pickle(
        _immutables.ImmutableMap,
        lambda m: (_immutables.ImmutableMap, (dict(m.items()),)),
    )
    register_constructor(_values.VInt, ("n",))
    register_constructor(_values.VPtr, ("addr",))
    register_singleton(_values._VUndef)
    register_singleton(_messages._Tau)
    register_singleton(_messages._EntAtom)
    register_singleton(_messages._ExtAtom)
    register_constructor(_messages.EventMsg, ("kind", "value"))
    register_constructor(_messages.RetMsg, ("value",))
    register_constructor(_messages.CallMsg, ("fname", "args"))
    register_constructor(_messages.SpawnMsg, ("fname",))
    register_constructor(_steps.Step, ("msg", "fp", "core", "mem"))
    register_constructor(_steps.StepAbort, ("fp", "reason"))

    # Language cores, frames and static code containers: the generic
    # slot reducer (cached hashes dropped, recomputed lazily on the
    # receiving side). AST nodes need none of this — their shared base
    # defines ``__reduce__`` (see repro.common.astbase.Node).
    from repro.langs.cimp import ast as _cimp_ast
    from repro.langs.cimp.semantics import CImpCore
    from repro.langs.ir.base import IRModule
    from repro.langs.ir.cminor import CmCore, CmFrame
    from repro.langs.ir.csharpminor import CshmCore, CshmFrame
    from repro.langs.ir.linear import LinCore, LinearFunction, LinFrame
    from repro.langs.ir.ltl import LTLCore, LTLFrame, LTLFunction
    from repro.langs.ir.mach import MachCore, MachFrame, MachFunction
    from repro.langs.ir.rtl import RTLCore, RTLFrame, RTLFunction
    from repro.langs.minic import ast as _minic_ast
    from repro.langs.minic.semantics import MFrame, MiniCCore
    from repro.langs.x86.ast import X86Function
    from repro.langs.x86.sc import X86Core

    for cls in (
        CImpCore,
        _cimp_ast.Function,
        _cimp_ast.CImpModule,
        IRModule,
        CmCore,
        CmFrame,
        CshmCore,
        CshmFrame,
        LinCore,
        LinFrame,
        LinearFunction,
        LTLCore,
        LTLFrame,
        LTLFunction,
        MachCore,
        MachFrame,
        MachFunction,
        RTLCore,
        RTLFrame,
        RTLFunction,
        _minic_ast.MiniCModule,
        MFrame,
        MiniCCore,
        X86Function,
        X86Core,
    ):
        register_slots(cls)

    # CImp AST nodes have their own immutable base (not astbase.Node);
    # every concrete node is a lazily-hashed slots class, so the
    # generic reducer applies uniformly.
    for obj in vars(_cimp_ast).values():
        if (
            isinstance(obj, type)
            and issubclass(obj, _cimp_ast._Node)
            and obj is not _cimp_ast._Node
        ):
            register_slots(obj)


# ----- channels -------------------------------------------------------------

#: Payload marker of a packed world batch (``encode_worlds``). Channels
#: are a private transport between the parallel explorer's processes,
#: so the marker can never collide with application payloads.
_WORLDS_TAG = "repro/worlds"


def _pack_uint(out, n):
    """Append ``n`` as an unsigned LEB128 varint to bytearray ``out``."""
    while n >= 0x80:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_uint(data, pos):
    """Read one LEB128 varint; returns ``(value, next_pos)``."""
    value = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise SerializationError(
                "truncated packed world record"
            ) from None
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


#: The channel whose encode/decode is currently on the stack. Workers
#: are single-threaded (the queue feeder threads only move bytes), so
#: a module global is safe and keeps the Memory reducer — called once
#: per distinct memory — free of any indirection.
_CURRENT_ENCODER = None
_CURRENT_DECODER = None


class _ChunkReader:
    """File-like over swappable byte chunks, so one persistent
    ``Unpickler`` can read many discrete messages."""

    __slots__ = ("_buf",)

    def __init__(self):
        self._buf = io.BytesIO()

    def set(self, data):
        self._buf = io.BytesIO(data)

    def read(self, n=-1):
        return self._buf.read(n)

    def readline(self):
        return self._buf.readline()


class ChannelEncoder:
    """The sender half of one directed transport channel.

    Owns the persistent pickler memo, the memory base cache and the
    send memo (``sent`` — the parallel explorer's per-destination
    dedup set, dropped together with the rest of the channel state on
    :meth:`reset` so its memory is bounded too). ``encode`` returns
    ``(epoch, bytes)``; the epoch must travel out-of-band with the
    message so the receiver can re-sync (see the module docstring).
    """

    def __init__(self, stateless=None):
        _registered()
        self.stateless = (
            _stateless_default() if stateless is None else stateless
        )
        self.epoch = 0
        self.resets = 0
        self.delta_hits = 0
        self.full_sends = 0
        self.base_registrations = 0
        self.sent = set()
        self._buf = io.BytesIO()
        self._fresh()

    def _fresh(self):
        self.sent.clear()
        self._bases = {}
        self._base_keep = []
        # Packed-record component tables (equality-keyed: a component
        # that re-crosses as a distinct-but-equal object still hits).
        self._threads_tab = {}
        self._bits_tab = {}
        self._mem_tab = {}
        self._epoch_bytes = 0
        self._pickler = pickle.Pickler(
            self._buf, protocol=pickle.HIGHEST_PROTOCOL
        )

    def reset(self):
        """Drop all channel state and open the next epoch.

        The caller owns the protocol: on a worker-to-worker channel a
        ``reset`` control message must precede the next data message
        (FIFO makes that sufficient); on a channel whose receiver only
        ever decodes (worker-to-coordinator records) the epoch carried
        by the next message triggers the implicit reset.
        """
        self.epoch += 1
        self.resets += 1
        self._fresh()

    def over_budget(self):
        """True when the channel state warrants a reset (never in
        stateless mode — there is no state to bound)."""
        if self.stateless:
            return False
        return (
            self._epoch_bytes >= CHANNEL_BYTES_LIMIT
            or len(self._base_keep) >= CHANNEL_BASES_LIMIT
            or len(self._mem_tab) >= CHANNEL_SENT_LIMIT
            or len(self.sent) >= CHANNEL_SENT_LIMIT
        )

    def encode(self, payload):
        """Pickle ``payload`` into a versioned message: ``(epoch,
        bytes)``.

        Hash-consed state repeated across this channel's messages
        serializes once per epoch (the persistent memo); memories
        delta-encode against the base cache. When observability is on,
        every encode lands in the wire-cost metrics:
        ``serialize.encode.calls`` / ``.bytes`` counters, a
        ``serialize.encode.seconds`` histogram, and a
        ``serialize.encode.memo_entries`` histogram (distinct objects
        the channel's memo held after the message — the sharing the
        channel buys over per-world dumps).
        """
        global _CURRENT_ENCODER
        from repro import obs

        track = obs.enabled
        if track:
            t0 = time.monotonic()
        buf = self._buf
        envelope = (SERIAL_SCHEMA_VERSION, _SEED_PROBE, payload)
        try:
            buf.seek(0)
            buf.truncate()
            if self.stateless:
                pickler = pickle.Pickler(
                    buf, protocol=pickle.HIGHEST_PROTOCOL
                )
                pickler.dump(envelope)
            else:
                pickler = self._pickler
                _CURRENT_ENCODER = self
                try:
                    pickler.dump(envelope)
                finally:
                    _CURRENT_ENCODER = None
            data = buf.getvalue()
        except Exception as exc:
            # The memo may be half-written: poison this epoch so the
            # receiver can never see a stream continuing it.
            self.reset()
            raise SerializationError(
                "cannot encode batch: {}".format(exc)
            ) from exc
        self._epoch_bytes += len(data)
        if track:
            obs.inc("serialize.encode.calls")
            obs.inc("serialize.encode.bytes", len(data))
            obs.observe(
                "serialize.encode.seconds", time.monotonic() - t0
            )
            if self.stateless:
                # Per-batch sharing bought by the (throwaway) memo.
                # Persistent channels skip this: the C pickler's memo
                # proxy has no __len__, and copying a memo that holds
                # every object of the epoch costs more than the
                # encode itself.
                memo = getattr(pickler, "memo", None)
                if memo is not None:
                    try:
                        size = len(memo)
                    except TypeError:
                        size = len(memo.copy())
                    obs.observe("serialize.encode.memo_entries", size)
        return self.epoch, data

    def encode_worlds(self, worlds):
        """Encode a batch of worlds as packed records: ``(epoch,
        bytes)``.

        Steady-state worlds — every component already in this
        channel's tables — cost 4-8 wire bytes each (varint indexes);
        only novel components are pickled, once per epoch. Falls back
        to a plain :meth:`encode` of the list in stateless mode. The
        receiver's :meth:`ChannelDecoder.decode` returns the list of
        (re-interned) worlds either way.
        """
        worlds = list(worlds)
        if self.stateless:
            return self.encode(worlds)
        novel = []
        packed = bytearray()
        tt = self._threads_tab
        bt = self._bits_tab
        mt = self._mem_tab
        _pack_uint(packed, len(worlds))
        for w in worlds:
            ti = tt.get(w.threads)
            if ti is None:
                ti = len(tt)
                tt[w.threads] = ti
                novel.append(w.threads)
            bi = bt.get(w.bits)
            if bi is None:
                bi = len(bt)
                bt[w.bits] = bi
                novel.append(w.bits)
            mi = mt.get(w.mem)
            if mi is None:
                mi = len(mt)
                mt[w.mem] = mi
                novel.append(w.mem)
            _pack_uint(packed, ti)
            _pack_uint(packed, w.cur)
            _pack_uint(packed, bi)
            _pack_uint(packed, mi)
        return self.encode((_WORLDS_TAG, novel, bytes(packed)))


class ChannelDecoder:
    """The receiver half of one directed transport channel.

    Mirrors exactly one :class:`ChannelEncoder`: the persistent
    unpickler memo and the decoded base cache only stay consistent
    with the sender's if every message of the current epoch is decoded
    here, in order. The epoch protocol enforces that: a newer epoch on
    an incoming message (or an explicit :meth:`reset_to`) drops all
    state, an older epoch raises.
    """

    def __init__(self, stateless=None):
        _registered()
        self.stateless = (
            _stateless_default() if stateless is None else stateless
        )
        self.epoch = 0
        self.resets = 0
        self._fresh()

    def _fresh(self):
        self._bases = {}
        # Packed-record component tables, mirroring the encoder's
        # (index -> component; the encoder assigns indexes densely).
        self._threads_list = []
        self._bits_list = []
        self._mem_list = []
        self._reader = _ChunkReader()
        self._unpickler = pickle.Unpickler(self._reader)

    def reset_to(self, epoch):
        """Adopt the sender's new epoch, dropping all channel state.

        Also the guard against mixed-up channels: an epoch older than
        the current one means a message from before a reset survived —
        decoding it against the fresh memo would silently resolve memo
        indexes to wrong objects, so it is refused loudly.
        """
        if epoch < self.epoch:
            raise SerializationError(
                "stale channel epoch {} (current {}): message from "
                "before a channel reset".format(epoch, self.epoch)
            )
        if epoch > self.epoch:
            self.epoch = epoch
            self.resets += 1
            self._fresh()

    # -- the receive path, used by the memory reducers ---------------

    def define_base(self, token, base_items, over_items):
        """A full memory send: rebuild the base locally (recomputing
        its Zobrist hash — never trusted from the wire), cache it
        under ``token``, and apply the overlay."""
        base = _memory.Memory(dict(base_items))
        self._bases[token] = base
        if not over_items:
            return base
        return self._rebase(base, over_items)

    def apply_delta(self, token, over_items):
        """A delta send against a previously-registered base."""
        base = self._bases.get(token)
        if base is None:
            raise SerializationError(
                "memory delta references unknown base #{} (channel "
                "out of sync: was a reset message lost?)".format(token)
            )
        if not over_items:
            return base
        return self._rebase(base, over_items)

    @staticmethod
    def _rebase(base, over_items):
        base_dict, _ = base.delta_parts()
        return _memory.Memory.rebase(
            base_dict, len(base), hash(base), over_items
        )

    def decode(self, epoch, data):
        """Decode one message, checking epoch, version and seed probe."""
        from repro import obs

        global _CURRENT_DECODER
        self.reset_to(epoch)
        if self.stateless:
            self._fresh()
        track = obs.enabled
        if track:
            t0 = time.monotonic()
        self._reader.set(data)
        _CURRENT_DECODER = self
        try:
            version, probe, payload = self._unpickler.load()
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                "cannot decode batch: {}".format(exc)
            ) from exc
        finally:
            _CURRENT_DECODER = None
            self._reader.set(b"")
        if track:
            obs.inc("serialize.decode.calls")
            obs.inc("serialize.decode.bytes", len(data))
            obs.observe(
                "serialize.decode.seconds", time.monotonic() - t0
            )
        if version != SERIAL_SCHEMA_VERSION:
            raise SerializationError(
                "unsupported batch schema version {!r} (expected {})".format(
                    version, SERIAL_SCHEMA_VERSION
                )
            )
        if probe != _SEED_PROBE:
            raise SerializationError(
                "hash-seed mismatch: batch was encoded under a different "
                "string-hash seed (batches are transport-only; use forked "
                "workers or pin PYTHONHASHSEED)"
            )
        if (
            type(payload) is tuple
            and len(payload) == 3
            and payload[0] == _WORLDS_TAG
        ):
            return self._expand_worlds(payload[1], payload[2])
        return payload

    def _expand_worlds(self, novel, packed):
        """Rebuild a packed world batch against the component tables.

        Replays the encoder's assignment discipline: a varint index
        equal to the current table size consumes the next item of the
        ``novel`` list into that table; anything beyond it means the
        channel ends are out of sync.
        """
        from repro.semantics.world import World

        tl = self._threads_list
        bl = self._bits_list
        ml = self._mem_list
        it = iter(novel)

        def resolve(idx, table):
            if idx == len(table):
                try:
                    table.append(next(it))
                except StopIteration:
                    raise SerializationError(
                        "packed world record exhausted its novel "
                        "components (channel out of sync)"
                    ) from None
            elif idx > len(table):
                raise SerializationError(
                    "packed world record references component #{} "
                    "beyond the channel table ({} entries): channel "
                    "out of sync".format(idx, len(table))
                )
            return table[idx]

        count, pos = _read_uint(packed, 0)
        out = []
        for _ in range(count):
            ti, pos = _read_uint(packed, pos)
            cur, pos = _read_uint(packed, pos)
            bi, pos = _read_uint(packed, pos)
            mi, pos = _read_uint(packed, pos)
            out.append(
                World.make(
                    resolve(ti, tl),
                    cur,
                    resolve(bi, bl),
                    resolve(mi, ml),
                )
            )
        return out


# ----- the one-shot batch envelope ------------------------------------------


def encode_batch(payload):
    """Pickle ``payload`` into one self-contained versioned batch.

    A throwaway channel: memories still delta-encode *within* the
    batch (two worlds sharing a base ship it once), but no state
    survives the call. The paired :func:`decode_batch` is the only
    valid decoder.
    """
    _epoch, data = ChannelEncoder().encode(payload)
    return data


def decode_batch(data):
    """Decode a one-shot batch, checking the version tag and the seed
    probe."""
    return ChannelDecoder().decode(0, data)


def roundtrip(value):
    """Encode then decode one value (the test hook)."""
    return decode_batch(encode_batch(value))


# ----- the persistent document envelope -------------------------------------

#: Version tag of persistent JSON *document* envelopes (fuzz campaign
#: checkpoints and similar on-disk state). Distinct from
#: :data:`SERIAL_SCHEMA_VERSION` on purpose: batches are transport-only
#: pickles guarded by a hash-seed probe, while documents must be
#: durable across interpreter launches — JSON-only payloads, no seed
#: dependence, no pickle.
DOC_SCHEMA_VERSION = 1


def wrap_document(kind, payload):
    """Wrap a JSON-safe ``payload`` in the versioned document envelope.

    ``kind`` self-describes the artifact (``repro inspect`` sniffs it),
    mirroring the witness artifact's schema discipline. The caller owns
    the atomic write (:func:`repro.obs.status.write_atomic`).
    """
    return {
        "type": str(kind),
        "version": DOC_SCHEMA_VERSION,
        "payload": payload,
    }


def unwrap_document(doc, kind):
    """The payload of a document envelope, after type/version checks.

    Raises :class:`SerializationError` on a foreign or future artifact
    — a resumed campaign must refuse a checkpoint it cannot faithfully
    interpret rather than silently re-running (or skipping) work.
    """
    if not isinstance(doc, dict) or doc.get("type") != kind:
        raise SerializationError(
            "not a {!r} document (type={!r})".format(
                kind, doc.get("type") if isinstance(doc, dict) else None
            )
        )
    version = doc.get("version")
    if version != DOC_SCHEMA_VERSION:
        raise SerializationError(
            "unsupported {} document version {!r} (expected {})".format(
                kind, version, DOC_SCHEMA_VERSION
            )
        )
    return doc.get("payload")
