"""Cross-process serialization of worlds and runtime state.

The parallel explorer (:mod:`repro.semantics.parallel`) partitions the
frontier across worker processes and ships cross-shard successor worlds
as pickled batches. Plain pickling fails on this codebase on purpose:
every runtime-state class blocks ``__setattr__`` (worlds are graph-node
keys and must stay immutable), so the default slot-state restore path
raises ``<class> is immutable`` on load. This module registers
``copyreg`` reducers that rebuild each class through its blessed
constructor instead:

* :class:`~repro.semantics.world.World` / ``Frame`` go through their
  ``make`` classmethods, so decoded worlds re-enter the receiver's
  intern tables and regain pointer-equality fast paths;
* :class:`~repro.common.memory.Memory` rebuilds from its merged
  contents (the Zobrist hash is recomputed, never trusted from the
  wire) and :class:`~repro.common.footprint.Footprint` re-interns
  through its hash-consing ``__new__``;
* value/message singletons (``VUndef``, ``TAU``, ``EntAtom``,
  ``ExtAtom``) decode to the receiver's singletons;
* language cores and frames restore via ``object.__setattr__`` with
  cached ``_hash`` slots dropped (they all recompute lazily), so a
  decoded core can never carry a stale hash.

Batches travel in a versioned envelope, mirroring the witness
artifact's schema discipline (:data:`repro.semantics.witness
.WITNESS_SCHEMA_VERSION`): a version tag guards layout changes and a
*hash-seed probe* guards transport between interpreters with different
string-hash seeds — world identity is hash-partitioned, so decoding
into a differently-seeded interpreter would silently scramble shard
ownership. The parallel explorer forks its workers (seed inherited),
making the probe a tripwire, not a tax; batches are transport-only and
must never be persisted.

Batch pickling is what makes sharding affordable: hash-consed frames,
cores and memories shared between the worlds of one batch serialize
once (pickle's memo table sees pointer-equal objects), so a batch of
``n`` sibling worlds costs far less than ``n`` independent dumps.
"""

import copyreg
import io
import pickle
import time

from repro.common import footprint as _footprint
from repro.common import freelist as _freelist
from repro.common import immutables as _immutables
from repro.common import memory as _memory
from repro.common import values as _values
from repro.lang import messages as _messages
from repro.lang import steps as _steps

#: Version tag of the batch envelope (bump on layout changes).
SERIAL_SCHEMA_VERSION = 1

#: Detects decoding under a different string-hash seed (see module
#: docstring): equal across fork, different across unrelated
#: interpreter launches unless ``PYTHONHASHSEED`` is pinned.
_SEED_PROBE = hash("repro.common.serialize:seed-probe")


class SerializationError(Exception):
    """A batch could not be encoded or decoded."""


# ----- reducers -------------------------------------------------------------


def _restore_slots(cls, items):
    """Rebuild a setattr-blocking slots instance from ``(name, value)``
    pairs, bypassing the immutability guard the way the constructors do."""
    obj = object.__new__(cls)
    for name, value in items:
        object.__setattr__(obj, name, value)
    return obj


def _all_slots(cls):
    names = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


#: Lazily-recomputed cache slots that must not cross the wire.
_CACHE_SLOTS = frozenset({"_hash", "_locs", "_merged"})


def register_slots(cls):
    """Register a generic reducer: all slots except cached ones.

    Only sound for classes whose cached slots are recomputed lazily via
    the ``try/except AttributeError`` pattern (every language core and
    frame — see e.g. ``CImpCore.__hash__``).
    """
    slots = tuple(n for n in _all_slots(cls) if n not in _CACHE_SLOTS)

    def _reduce(obj, _cls=cls, _slots=slots):
        items = []
        for name in _slots:
            try:
                items.append((name, getattr(obj, name)))
            except AttributeError:
                pass
        return _restore_slots, (_cls, tuple(items))

    copyreg.pickle(cls, _reduce)


def register_constructor(cls, fields):
    """Register a reducer that calls ``cls(*fields)`` on decode."""

    def _reduce(obj, _cls=cls, _fields=tuple(fields)):
        return _cls, tuple(getattr(obj, f) for f in _fields)

    copyreg.pickle(cls, _reduce)


def register_singleton(cls):
    """Register a reducer for a ``__new__``-singleton class."""
    copyreg.pickle(cls, lambda obj, _cls=cls: (_cls, ()))


def _restore_world(threads, cur, bits, mem):
    from repro.semantics.world import World

    return World.make(threads, cur, bits, mem)


def _restore_frame(mod_idx, flist, core):
    from repro.semantics.world import Frame

    return Frame.make(mod_idx, flist, core)


def _restore_memory(items):
    return _memory.Memory(dict(items))


def _registered():
    """Install every reducer once (idempotent; keyed on World)."""
    from repro.semantics import world as _world

    if _world.World in copyreg.dispatch_table:
        return

    copyreg.pickle(
        _world.World,
        lambda w: (
            _restore_world, (w.threads, w.cur, w.bits, w.mem)
        ),
    )
    copyreg.pickle(
        _world.Frame,
        lambda f: (_restore_frame, (f.mod_idx, f.flist, f.core)),
    )
    copyreg.pickle(
        _memory.Memory,
        lambda m: (_restore_memory, (tuple(m.items()),)),
    )
    copyreg.pickle(
        _footprint.Footprint,
        lambda fp: (_footprint.Footprint, (tuple(fp.rs), tuple(fp.ws))),
    )
    register_constructor(_freelist.FreeList, ("base",))
    copyreg.pickle(
        _immutables.ImmutableMap,
        lambda m: (_immutables.ImmutableMap, (dict(m.items()),)),
    )
    register_constructor(_values.VInt, ("n",))
    register_constructor(_values.VPtr, ("addr",))
    register_singleton(_values._VUndef)
    register_singleton(_messages._Tau)
    register_singleton(_messages._EntAtom)
    register_singleton(_messages._ExtAtom)
    register_constructor(_messages.EventMsg, ("kind", "value"))
    register_constructor(_messages.RetMsg, ("value",))
    register_constructor(_messages.CallMsg, ("fname", "args"))
    register_constructor(_messages.SpawnMsg, ("fname",))
    register_constructor(_steps.Step, ("msg", "fp", "core", "mem"))
    register_constructor(_steps.StepAbort, ("fp", "reason"))

    # Language cores, frames and static code containers: the generic
    # slot reducer (cached hashes dropped, recomputed lazily on the
    # receiving side). AST nodes need none of this — their shared base
    # defines ``__reduce__`` (see repro.common.astbase.Node).
    from repro.langs.cimp import ast as _cimp_ast
    from repro.langs.cimp.semantics import CImpCore
    from repro.langs.ir.base import IRModule
    from repro.langs.ir.cminor import CmCore, CmFrame
    from repro.langs.ir.csharpminor import CshmCore, CshmFrame
    from repro.langs.ir.linear import LinCore, LinearFunction, LinFrame
    from repro.langs.ir.ltl import LTLCore, LTLFrame, LTLFunction
    from repro.langs.ir.mach import MachCore, MachFrame, MachFunction
    from repro.langs.ir.rtl import RTLCore, RTLFrame, RTLFunction
    from repro.langs.minic import ast as _minic_ast
    from repro.langs.minic.semantics import MFrame, MiniCCore
    from repro.langs.x86.ast import X86Function
    from repro.langs.x86.sc import X86Core

    for cls in (
        CImpCore,
        _cimp_ast.Function,
        _cimp_ast.CImpModule,
        IRModule,
        CmCore,
        CmFrame,
        CshmCore,
        CshmFrame,
        LinCore,
        LinFrame,
        LinearFunction,
        LTLCore,
        LTLFrame,
        LTLFunction,
        MachCore,
        MachFrame,
        MachFunction,
        RTLCore,
        RTLFrame,
        RTLFunction,
        _minic_ast.MiniCModule,
        MFrame,
        MiniCCore,
        X86Function,
        X86Core,
    ):
        register_slots(cls)

    # CImp AST nodes have their own immutable base (not astbase.Node);
    # every concrete node is a lazily-hashed slots class, so the
    # generic reducer applies uniformly.
    for obj in vars(_cimp_ast).values():
        if (
            isinstance(obj, type)
            and issubclass(obj, _cimp_ast._Node)
            and obj is not _cimp_ast._Node
        ):
            register_slots(obj)


# ----- the batch envelope ---------------------------------------------------


def encode_batch(payload):
    """Pickle ``payload`` (worlds, records, ...) into a versioned batch.

    One batch shares one pickle memo table, so hash-consed state shared
    between the payload's worlds is serialized exactly once.

    When observability is on, every encode lands in the wire-cost
    metrics: ``serialize.encode.calls`` / ``.bytes`` counters, a
    ``serialize.encode.seconds`` histogram, and a
    ``serialize.encode.memo_entries`` histogram (distinct objects the
    batch's shared memo table held — the sharing the batch envelope
    buys over per-world dumps).
    """
    from repro import obs

    _registered()
    track = obs.enabled
    if track:
        t0 = time.monotonic()
    try:
        buf = io.BytesIO()
        pickler = pickle.Pickler(buf, protocol=pickle.HIGHEST_PROTOCOL)
        pickler.dump((SERIAL_SCHEMA_VERSION, _SEED_PROBE, payload))
        data = buf.getvalue()
    except Exception as exc:
        raise SerializationError(
            "cannot encode batch: {}".format(exc)
        ) from exc
    if track:
        obs.inc("serialize.encode.calls")
        obs.inc("serialize.encode.bytes", len(data))
        obs.observe(
            "serialize.encode.seconds", time.monotonic() - t0
        )
        memo = getattr(pickler, "memo", None)
        if memo is not None:
            try:
                size = len(memo)
            except TypeError:
                # The C pickler exposes a len-less memo proxy.
                size = len(memo.copy())
            obs.observe("serialize.encode.memo_entries", size)
    return data


def decode_batch(data):
    """Decode a batch, checking the version tag and the seed probe."""
    from repro import obs

    _registered()
    track = obs.enabled
    if track:
        t0 = time.monotonic()
    try:
        version, probe, payload = pickle.loads(data)
    except Exception as exc:
        raise SerializationError(
            "cannot decode batch: {}".format(exc)
        ) from exc
    if track:
        obs.inc("serialize.decode.calls")
        obs.inc("serialize.decode.bytes", len(data))
        obs.observe(
            "serialize.decode.seconds", time.monotonic() - t0
        )
    if version != SERIAL_SCHEMA_VERSION:
        raise SerializationError(
            "unsupported batch schema version {!r} (expected {})".format(
                version, SERIAL_SCHEMA_VERSION
            )
        )
    if probe != _SEED_PROBE:
        raise SerializationError(
            "hash-seed mismatch: batch was encoded under a different "
            "string-hash seed (batches are transport-only; use forked "
            "workers or pin PYTHONHASHSEED)"
        )
    return payload


def roundtrip(value):
    """Encode then decode one value (the test hook)."""
    return decode_batch(encode_batch(value))
