"""Shared substrate: values, memory, footprints, freelists.

These modules implement the state model of the paper's abstract concurrent
language (Fig. 4 and Fig. 5): a word-addressed partial-map memory, values
that may be pointers (so that ``closed`` can trace reachability), footprints
``(rs, ws)`` recording the memory locations a step reads and writes, and
disjoint per-thread freelists reserving address space for stack allocation.
"""

from repro.common.values import VInt, VPtr, VUndef, Value, wrap32
from repro.common.footprint import EMP, Footprint, conflict
from repro.common.freelist import FreeList
from repro.common.memory import Memory
from repro.common.errors import (
    CompileError,
    ParseError,
    ReproError,
    SemanticsError,
    TypeCheckError,
    ValidationError,
)

__all__ = [
    "VInt",
    "VPtr",
    "VUndef",
    "Value",
    "wrap32",
    "EMP",
    "Footprint",
    "conflict",
    "FreeList",
    "Memory",
    "ReproError",
    "ParseError",
    "TypeCheckError",
    "CompileError",
    "SemanticsError",
    "ValidationError",
]
