"""The abstract module language interface (Fig. 4).

A language is a tuple ``(Module, Core, InitCore, step)``. We realize it
as the abstract base class :class:`ModuleLanguage`; every concrete
language (CImp, MiniC, each compiler IR, x86-SC, x86-TSO) subclasses it.

The contract, shared by the global semantics, the simulation checker and
the well-definedness checker:

* **Cores are immutable and hashable.** They contain everything
  thread-local that is not memory: continuations, register files,
  freelist allocation indices, TSO store buffers.
* **``step`` is pure.** It returns every outcome of one transition from
  ``(core, mem)`` under freelist ``flist``; it never mutates its inputs.
* **Footprints are honest.** Every memory read appears in ``fp.rs`` and
  every write/allocation in ``fp.ws`` — the well-definedness checker
  (Def. 1) verifies this extensionally by perturbing memory outside the
  reported sets.
"""

from abc import ABC, abstractmethod


class ModuleLanguage(ABC):
    """Abstract base for module languages ``tl = (Module, Core, InitCore, step)``."""

    #: Human-readable language name (e.g. ``"Clight"``, ``"x86-SC"``).
    name = "?"

    @abstractmethod
    def init_core(self, module, entry, args=()):
        """``InitCore``: the initial core for calling ``entry`` with ``args``.

        Returns ``None`` when ``entry`` is not defined in ``module`` —
        the global semantics then tries the other linked modules.
        """

    @abstractmethod
    def step(self, module, core, mem, flist):
        """All outcomes of one local step: a list of Step/StepAbort.

        An empty list means the core is terminated (a final core); stuck
        non-final cores must report ``StepAbort`` explicitly.
        """

    def entry_names(self, module):
        """The entry names ``init_core`` accepts for ``module``, or ``None``.

        Used by :class:`repro.semantics.world.GlobalContext` to
        precompute its resolve table. The default covers every in-tree
        language (they all keep a ``functions`` name map on the module);
        a language whose entries cannot be enumerated should return
        ``None``, which makes resolution fall back to probing each
        module with ``init_core``.
        """
        functions = getattr(module, "functions", None)
        if functions is None:
            return None
        return functions.keys()

    def stage_module(self, module):
        """Closure-compile ``module``'s step relation (staging hook).

        Returns ``(step, nodes_compiled)`` where ``step(core, mem,
        flist)`` behaves exactly like :meth:`step` with ``module``
        bound — same outcome lists, same footprints, same aborts — or
        ``None`` to keep the interpreter. The default keeps the
        interpreter; see :mod:`repro.lang.closure` for the cache, the
        ``REPRO_CLOSURE`` gate and the soundness contract (compiled
        closures live in side tables keyed by node, never inside
        cores, so state hashing/pickling is unaffected).
        """
        return None

    def after_external(self, core, retval):
        """Resume a core that emitted ``CallMsg`` with the callee's result.

        Languages that never make external calls may keep the default,
        which signals a protocol violation.
        """
        raise NotImplementedError(
            "{} cores cannot resume from external calls".format(self.name)
        )

    def is_final(self, module, core):
        """True iff ``core`` has terminated (no further steps)."""
        return core is None


def resolve_entry(modules, entry, args=()):
    """Find the module defining ``entry`` and build its initial core.

    ``modules`` is a sequence of :class:`repro.lang.module.ModuleDecl`.
    Returns ``(module_decl, core)`` or ``None`` when no module defines
    the entry. Ambiguity (two modules defining the same entry) is a
    linking error and raises ``ValueError``.
    """
    found = None
    for decl in modules:
        core = decl.lang.init_core(decl.code, entry, args)
        if core is None:
            continue
        if found is not None:
            raise ValueError(
                "entry {!r} defined in multiple modules".format(entry)
            )
        found = (decl, core)
    return found
