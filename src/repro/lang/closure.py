"""Closure compilation of the step interpreters (staging).

Exploration spends its life inside ``lang.step``: every call walks the
same immutable AST/IR nodes through an ``isinstance`` ladder,
re-destructures their fields, and re-resolves operator tables and
symbol addresses. The step relation of Fig. 4 is a *per-module,
per-node* function, so all of that work can be done **once per
module**: at staging time each language compiles its nodes into nested
closures with the dispatch, the operator lookups, the flattened branch
continuations and — where the accessed locations are static — the
footprints already resolved. The hot loop then runs a chain of direct
calls.

This module is the language-independent half of that machinery:

* :func:`enabled` — the ``REPRO_CLOSURE`` gate (``0``/``false``/...
  falls back to the interpretive path; the CLI's
  ``--no-closure-compile`` sets the override).
* :func:`stage` — the compile cache, keyed on ``(language, module)``
  identity. Each entry is a :class:`StagedModule` holding the compiled
  step function plus a bounded memo of step outcomes: ``step`` is pure
  (the :class:`~repro.lang.interface.ModuleLanguage` contract), so the
  outcome list for ``(core, mem, flist)`` can be shared between every
  world that reaches the same thread-local configuration.
* :func:`step_outcomes` — the drop-in the exploration layers call
  instead of ``decl.lang.step``; routes through the staged artifact
  when compilation is on and the interpreter when it is off.
* :func:`prime` — compiles every module of a context up front so the
  cost lands in its own obs span/phase instead of the first expansion.

Languages opt in by overriding
:meth:`~repro.lang.interface.ModuleLanguage.stage_module` to return a
``(step, nodes_compiled)`` pair; the default ``None`` keeps the
interpreter (counted in ``closure.fallbacks``). Compiled cores, konts
and frames are **unchanged** — closures live in side tables keyed by
node, never inside the state, so hashing, interning, pickling and the
cross-shard wire format are untouched.

Counters: ``closure.modules_staged``, ``closure.nodes_compiled``,
``closure.compile_seconds``, ``closure.fallbacks``,
``closure.memo_hits``, ``closure.memo_misses``.
"""

import os
from time import perf_counter

from repro import obs

#: Environment switch: unset or truthy → compile; ``0``/``false``/
#: ``off``/``no``/empty → interpretive path end-to-end.
ENV_CLOSURE = "REPRO_CLOSURE"

_OFF_VALUES = frozenset({"0", "false", "off", "no", ""})

#: CLI override (``--no-closure-compile``): ``None`` defers to the
#: environment, a bool wins outright.
_override = None

#: Step-outcome memo bound per staged module; outcome lists are small,
#: so this caps worst-case growth around a few hundred MB before the
#: table self-clears (same policy as the intern tables).
MEMO_MAX = 1 << 20

#: Compile-cache bound: entries hold strong references to language and
#: module, so long test sessions staging thousands of throwaway
#: modules must not accumulate them forever. Recompiles are cheap.
CACHE_MAX = 512


def set_enabled(value):
    """Override the env gate (CLI); ``None`` restores env control."""
    global _override
    _override = value


def enabled(environ=None):
    """True iff the staged path should be used."""
    if _override is not None:
        return _override
    env = os.environ if environ is None else environ
    value = env.get(ENV_CLOSURE)
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES


class StagedModule:
    """One module's compiled artifact + step-outcome memo.

    ``step(core, mem, flist)`` closes over the module; ``compiled`` is
    False when the language kept the interpreter. The memo is sound
    because ``step`` is pure and total in ``(core, mem, flist)``; the
    returned lists are shared, so callers must not mutate them (none
    do — the engine, POR and the race predictor only read).
    """

    __slots__ = ("lang", "module", "step", "compiled", "nodes_compiled",
                 "memo")

    def __init__(self, lang, module, step, compiled, nodes_compiled):
        self.lang = lang
        self.module = module
        self.step = step
        self.compiled = compiled
        self.nodes_compiled = nodes_compiled
        self.memo = {}

    def outcomes(self, core, mem, flist):
        memo = self.memo
        key = (core, mem, flist)
        outs = memo.get(key)
        if outs is None:
            outs = self.step(core, mem, flist)
            if len(memo) >= MEMO_MAX:
                memo.clear()
            memo[key] = outs
            if obs.enabled:
                obs.inc("closure.memo_misses")
        elif obs.enabled:
            obs.inc("closure.memo_hits")
        return outs


#: The process-wide compile cache: ``(id(lang), id(module)) →
#: StagedModule``. Keying on the *language instance* too keeps x86-SC
#: and x86-TSO artifacts apart when they stage the same module (the
#: TSO subclass overrides the memory hooks the closures bind). Strong
#: references inside StagedModule keep the ids stable for the life of
#: each entry.
_cache = {}


def _interp_step(lang, module):
    def step(core, mem, flist):
        return lang.step(module, core, mem, flist)
    return step


def stage(lang, module):
    """Compile (or fetch the cached artifact for) one module."""
    key = (id(lang), id(module))
    staged = _cache.get(key)
    if staged is not None:
        return staged
    start = perf_counter()
    # getattr: test doubles duck-type ModuleLanguage without
    # subclassing it; no hook means no compiler.
    hook = getattr(lang, "stage_module", None)
    artifact = hook(module) if hook is not None else None
    elapsed = perf_counter() - start
    if artifact is None:
        staged = StagedModule(lang, module, _interp_step(lang, module),
                              False, 0)
    else:
        step, nodes = artifact
        staged = StagedModule(lang, module, step, True, nodes)
    if len(_cache) >= CACHE_MAX:
        _cache.clear()
    _cache[key] = staged
    if obs.enabled:
        obs.inc("closure.modules_staged")
        obs.inc("closure.compile_seconds", elapsed)
        if staged.compiled:
            obs.inc("closure.nodes_compiled", staged.nodes_compiled)
        else:
            obs.inc("closure.fallbacks")
    return staged


def clear_cache():
    """Drop every staged artifact (tests; never required for soundness)."""
    _cache.clear()


def step_outcomes(decl, core, mem, flist):
    """All outcomes of one local step of ``decl``'s language.

    The staged, memoized equivalent of ``decl.lang.step(decl.code,
    core, mem, flist)`` — and exactly that call when compilation is
    disabled.
    """
    if not enabled():
        return decl.lang.step(decl.code, core, mem, flist)
    return stage(decl.lang, decl.code).outcomes(core, mem, flist)


def prime(ctx):
    """Stage every module of ``ctx`` (a GlobalContext) up front.

    No-op when compilation is off. Exploration calls this inside its
    own ``closure_compile`` span so compile time is attributed as a
    phase of its own rather than booked against expansion.
    """
    if not enabled():
        return
    for decl in ctx.modules:
        stage(decl.lang, decl.code)
