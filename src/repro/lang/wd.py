"""Dynamic checker for well-defined languages (Def. 1).

``wd(tl)`` gives footprints their extensional meaning: a step's effect
stays inside its write set, its behaviour depends only on its read set
(plus write-set availability and the allocation status of the freelist),
and even its *nondeterminism* is insensitive to memory outside the read
sets. In Coq these are proved once per language; here we check them on
concrete steps, adversarially perturbing the memory outside the reported
footprint and re-running the step.

The checker is used two ways:

* hypothesis property tests feed it randomly generated cores/memories;
* the WD benchmark runs it over every state reached while executing the
  test-program suite, per language.
"""

from repro.common.memory import (
    eq_on,
    forward,
    leffect,
    leq_post,
    leq_pre,
)
from repro.common.values import VInt
from repro.common.footprint import union_all
from repro.lang.messages import is_silent
from repro.lang.steps import Step

#: How many freelist slots the checker treats as "the" freelist extent.
FLIST_EXTENT = 512

#: A global address assumed unused by any test program, used to check
#: insensitivity to allocations elsewhere in the global region.
_SPARE_GLOBAL = (1 << 20) - 7


def _value_perturbations(mem, protected, limit):
    """Memories differing from ``mem`` in contents outside ``protected``."""
    variants = []
    for addr in sorted(mem.domain()):
        if addr in protected:
            continue
        old = mem.load(addr)
        new = VInt(old.n + 1) if isinstance(old, VInt) else VInt(1)
        variants.append(mem.store(addr, new))
        if len(variants) >= limit:
            break
    return variants


def _domain_perturbations(mem, protected, flist_addrs, limit):
    """Memories whose domain differs outside ws/rs/freelist."""
    variants = []
    if _SPARE_GLOBAL not in mem.domain() and _SPARE_GLOBAL not in protected:
        variants.append(mem.alloc(_SPARE_GLOBAL, VInt(0)))
    removable = [
        a
        for a in sorted(mem.domain())
        if a not in protected and a not in flist_addrs
    ]
    for addr in removable[:limit]:
        data = {a: v for a, v in mem.items() if a != addr}
        variants.append(type(mem)(data))
    return [v for v in variants if v is not None][:limit]


def leq_pre_perturbations(mem, fp, flist_addrs, limit=4):
    """Variant memories satisfying ``LEqPre(mem, ·, fp, F)``.

    Contents may change anywhere outside the read set; the domain may
    change outside read set, write set and freelist.
    """
    protected_values = set(fp.rs)
    protected_domain = set(fp.rs) | set(fp.ws)
    variants = _value_perturbations(mem, protected_values, limit)
    variants += _domain_perturbations(
        mem, protected_domain, flist_addrs, limit
    )
    return [
        v for v in variants if leq_pre(mem, v, fp, flist_addrs)
    ]


def _outcome_key(outcome):
    """Message/footprint/core signature of a step, for matching."""
    if isinstance(outcome, Step):
        return ("step", outcome.msg, outcome.fp, outcome.core)
    return ("abort",)


def check_step_wd(lang, module, core, mem, flist, limit=4):
    """Check Def. 1 for every outcome of one step; return violations.

    Returns a list of human-readable violation strings (empty when the
    step satisfies all four well-definedness conditions on the generated
    perturbations).
    """
    violations = []
    flist_addrs = flist.addresses(FLIST_EXTENT)
    outcomes = lang.step(module, core, mem, flist)

    for outcome in outcomes:
        if not isinstance(outcome, Step):
            continue
        fp = outcome.fp
        # Item (1): the domain only grows.
        if not forward(mem, outcome.mem):
            violations.append(
                "forward violated: step shrank the memory domain"
            )
        # Item (2): effects confined to the write set; fresh cells from F.
        if not leffect(mem, outcome.mem, fp, flist_addrs):
            violations.append(
                "LEffect violated: effect outside ws or allocation "
                "outside F (fp={!r})".format(fp)
            )
        # Item (3): behaviour depends only on rs / ws availability / F.
        for variant in leq_pre_perturbations(mem, fp, flist_addrs, limit):
            matched = False
            for out2 in lang.step(module, core, variant, flist):
                if not isinstance(out2, Step):
                    continue
                if (
                    out2.msg == outcome.msg
                    and out2.fp == fp
                    and out2.core == outcome.core
                    and leq_post(outcome.mem, out2.mem, fp, flist_addrs)
                ):
                    matched = True
                    break
            if not matched:
                violations.append(
                    "LEqPre-insensitivity violated: perturbing memory "
                    "outside rs changed the step (msg={!r})".format(
                        outcome.msg
                    )
                )

    # Item (4): nondeterminism insensitive outside the silent read sets.
    tau_fps = [
        o.fp
        for o in outcomes
        if isinstance(o, Step) and is_silent(o.msg)
    ]
    if tau_fps:
        delta0 = union_all(tau_fps)
        keys = {_outcome_key(o) for o in outcomes}
        for variant in leq_pre_perturbations(
            mem, delta0, flist_addrs, limit
        ):
            for out2 in lang.step(module, core, variant, flist):
                if _outcome_key(out2) not in keys:
                    violations.append(
                        "nondeterminism sensitive to memory outside "
                        "silent read sets: new outcome {!r}".format(out2)
                    )
    return violations


def check_execution_wd(lang, module, core, mem, flist, max_steps=200,
                       limit=2):
    """Run a module, checking ``wd`` at every step along one path.

    Follows the first successful outcome at each step (sufficient for
    the deterministic languages; the nondeterministic outcomes are still
    all checked at each state). Stops at termination, abort, or when a
    non-silent message requires the global semantics. Returns the list
    of all violations found.
    """
    violations = []
    for _ in range(max_steps):
        outcomes = lang.step(module, core, mem, flist)
        if not outcomes:
            break
        violations.extend(
            check_step_wd(lang, module, core, mem, flist, limit)
        )
        nxt = None
        for outcome in outcomes:
            if isinstance(outcome, Step) and is_silent(outcome.msg):
                nxt = outcome
                break
        if nxt is None:
            break
        core, mem = nxt.core, nxt.mem
    return violations


def check_memory_invariance(lang, module, core, mem, flist):
    """Footprint honesty: the untouched region is bit-identical.

    A lighter companion to :func:`check_step_wd` used in property tests:
    for every outcome, memory restricted to ``dom(σ) \\ ws`` must be
    unchanged.
    """
    violations = []
    for outcome in lang.step(module, core, mem, flist):
        if not isinstance(outcome, Step):
            continue
        untouched = mem.domain() - outcome.fp.ws
        if not eq_on(mem, outcome.mem, untouched):
            violations.append(
                "write outside declared ws: fp={!r}".format(outcome.fp)
            )
    return violations
