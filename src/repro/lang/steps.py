"""Results of module-local steps.

The labelled transition of Fig. 4 is

    ``F ⊢ (κ, σ) --ι/δ--> (κ', σ')  ∪  abort``

A language's ``step`` function returns a *list* of outcomes — the
nondeterminism of the local semantics (e.g. TSO buffer flushes) is the
length of that list. Each outcome is either a :class:`Step` (message,
footprint, successor core, successor memory) or :class:`StepAbort`
(undefined behaviour: wild access, failed ``assert``, stuck state).
"""

from repro.common.footprint import EMP


class Step:
    """A successful local transition ``--ι/δ--> (κ', σ')``."""

    __slots__ = ("msg", "fp", "core", "mem")

    def __init__(self, msg, fp, core, mem):
        object.__setattr__(self, "msg", msg)
        object.__setattr__(self, "fp", fp)
        object.__setattr__(self, "core", core)
        object.__setattr__(self, "mem", mem)

    def __setattr__(self, name, value):
        raise AttributeError("Step is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Step)
            and self.msg == other.msg
            and self.fp == other.fp
            and self.core == other.core
            and self.mem == other.mem
        )

    def __hash__(self):
        return hash((self.msg, self.fp, self.core, self.mem))

    def __repr__(self):
        return "Step(msg={!r}, fp={!r})".format(self.msg, self.fp)


class StepAbort:
    """The ``abort`` outcome: the module reached undefined behaviour.

    ``reason`` is diagnostic only and excluded from equality, so that
    aborts compare equal in explored state graphs regardless of the
    message text.
    """

    __slots__ = ("fp", "reason")

    def __init__(self, fp=EMP, reason=""):
        object.__setattr__(self, "fp", fp)
        object.__setattr__(self, "reason", reason)

    def __setattr__(self, name, value):
        raise AttributeError("StepAbort is immutable")

    def __eq__(self, other):
        return isinstance(other, StepAbort) and self.fp == other.fp

    def __hash__(self):
        return hash(("StepAbort", self.fp))

    def __repr__(self):
        return "StepAbort({!r})".format(self.reason)


def successful(outcomes):
    """The :class:`Step` outcomes among a step result list."""
    return [o for o in outcomes if isinstance(o, Step)]


def has_abort(outcomes):
    """True iff any outcome is an abort."""
    return any(isinstance(o, StepAbort) for o in outcomes)
