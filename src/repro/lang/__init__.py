"""The abstract concurrent language of the paper (Fig. 4).

This package is language-*independent*: it defines the interface every
module language implements (:mod:`repro.lang.interface`), the messages
and step outcomes exchanged with the global semantics
(:mod:`repro.lang.messages`, :mod:`repro.lang.steps`), module/program
structure and linking (:mod:`repro.lang.module`), and the dynamic
well-definedness checker of Def. 1 (:mod:`repro.lang.wd`).
"""

from repro.lang.interface import ModuleLanguage, resolve_entry
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    TAU,
    CallMsg,
    EventMsg,
    Message,
    RetMsg,
    is_observable,
    is_silent,
)
from repro.lang.module import GlobalEnv, ModuleDecl, Program
from repro.lang.steps import Step, StepAbort, has_abort, successful

__all__ = [
    "ModuleLanguage",
    "resolve_entry",
    "TAU",
    "ENT_ATOM",
    "EXT_ATOM",
    "Message",
    "EventMsg",
    "RetMsg",
    "CallMsg",
    "is_silent",
    "is_observable",
    "GlobalEnv",
    "ModuleDecl",
    "Program",
    "Step",
    "StepAbort",
    "successful",
    "has_abort",
]
