"""Modules, global environments and whole programs (Fig. 4).

* :class:`GlobalEnv` — ``ge``: the statically allocated globals a module
  declares, as a symbol table (name → address) plus initial values
  (address → value).
* :class:`ModuleDecl` — the triple ``(tl, ge, π)``: language, global
  environment, code.
* :class:`Program` — ``let Π in f1 ∥ … ∥ fn``: a set of modules and one
  entry name per thread.

Linking (``GE(Π)``, Fig. 7) takes the union of all global environments;
it is defined only when they are compatible, i.e. agree on common symbols
and never map different symbols to the same address.
"""

from repro.common.errors import SemanticsError
from repro.common.freelist import is_global
from repro.common.memory import Memory, closed


class GlobalEnv:
    """A module's global environment ``ge``.

    ``symbols`` maps global names to their (flat, word) addresses;
    ``init`` maps those addresses to initial values. Addresses must lie
    in the global region (below ``LOCAL_BASE``).
    """

    __slots__ = ("symbols", "init")

    def __init__(self, symbols=None, init=None):
        symbols = dict(symbols or {})
        init = dict(init or {})
        by_addr = {}
        for name, addr in symbols.items():
            if not is_global(addr):
                raise SemanticsError(
                    "global {!r} at non-global address {}".format(name, addr)
                )
            # Two symbols of the *same* module must not share an
            # address either — ``compatible()`` only catches the
            # cross-module case, so a self-colliding module would
            # otherwise link silently.
            clash = by_addr.get(addr)
            if clash is not None:
                raise SemanticsError(
                    "globals {!r} and {!r} share address {}".format(
                        clash, name, addr
                    )
                )
            by_addr[addr] = name
        self.symbols = symbols
        self.init = init

    def __eq__(self, other):
        return (
            isinstance(other, GlobalEnv)
            and self.symbols == other.symbols
            and self.init == other.init
        )

    def __repr__(self):
        return "GlobalEnv(symbols={!r})".format(self.symbols)

    def address_of(self, name):
        """The address of global ``name``, or ``None``."""
        return self.symbols.get(name)

    def memory(self):
        """The initial memory fragment this environment contributes."""
        return Memory(self.init)

    def domain(self):
        return frozenset(self.init)

    def compatible(self, other):
        """True iff the two environments can be linked."""
        for name, addr in self.symbols.items():
            if other.symbols.get(name, addr) != addr:
                return False
        # Distinct symbols must not collide on addresses.
        mine = {a: n for n, a in self.symbols.items()}
        for name, addr in other.symbols.items():
            if mine.get(addr, name) != name:
                return False
        for addr, val in self.init.items():
            if addr in other.init and other.init[addr] != val:
                return False
        return True

    def union(self, other):
        """The linked environment; raises when incompatible."""
        if not self.compatible(other):
            raise SemanticsError("incompatible global environments")
        symbols = dict(self.symbols)
        symbols.update(other.symbols)
        init = dict(self.init)
        init.update(other.init)
        return GlobalEnv(symbols, init)


class ModuleDecl:
    """A module declaration ``(tl, ge, π)``: language, globals, code."""

    __slots__ = ("lang", "ge", "code")

    def __init__(self, lang, ge, code):
        self.lang = lang
        self.ge = ge
        self.code = code

    def __repr__(self):
        return "ModuleDecl(lang={})".format(self.lang.name)


class Program:
    """A whole program ``let Π in f1 ∥ … ∥ fn``.

    ``modules`` is the module set Π; ``entries`` gives the entry function
    of each thread (thread ids are 1-based positions, matching the
    paper's ``t ∈ {1..n}``).
    """

    __slots__ = ("modules", "entries")

    def __init__(self, modules, entries):
        self.modules = tuple(modules)
        self.entries = tuple(entries)
        if not self.entries:
            raise SemanticsError("a program needs at least one thread")

    def __repr__(self):
        return "Program(entries={!r})".format(list(self.entries))

    def global_env(self):
        """``GE(Π)``: the union of all modules' global environments."""
        ge = GlobalEnv()
        for decl in self.modules:
            ge = ge.union(decl.ge)
        return ge

    def initial_memory(self):
        """The initial memory ``σ = GE(Π)``, checked ``closed`` (Load rule).

        Raises :class:`SemanticsError` when the linked globals contain a
        wild pointer — the Load rule's side condition.
        """
        mem = self.global_env().memory()
        if not closed(mem):
            raise SemanticsError("initial globals are not closed")
        return mem

    def shared_addresses(self):
        """The shared region ``S``: the domain of the linked globals."""
        return self.global_env().domain()
