"""Messages labelling module-local steps (Fig. 4).

``ι ::= τ | e | ret | EntAtom | ExtAtom`` — we additionally carry the
cross-module ``call`` message of the interaction semantics (the paper's
Coq development supports external calls "in the same way as in
Compositional CompCert"; the paper elides them for presentation, we do
not). Messages define the protocol between a module's local semantics
and the global whole-program semantics:

* :data:`TAU` — a silent internal step;
* :class:`EventMsg` — an externally observable event (e.g. ``print``);
* :class:`RetMsg` — termination of the current activation, with the
  return value (at the bottom activation this terminates the thread);
* :data:`ENT_ATOM` / :data:`EXT_ATOM` — entry/exit of an atomic block;
* :class:`CallMsg` — a call to a function not defined in this module,
  to be resolved against the other linked modules.

All messages are immutable and hashable.
"""


class Message:
    """Abstract base of step messages."""

    __slots__ = ()


class _Tau(Message):
    """The silent message ``τ``. A singleton, exported as ``TAU``."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "TAU"

    def __eq__(self, other):
        return isinstance(other, _Tau)

    def __hash__(self):
        return hash("TAU")


class _EntAtom(Message):
    """Entry into an atomic block. A singleton, exported as ``ENT_ATOM``."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "EntAtom"

    def __eq__(self, other):
        return isinstance(other, _EntAtom)

    def __hash__(self):
        return hash("EntAtom")


class _ExtAtom(Message):
    """Exit from an atomic block. A singleton, exported as ``EXT_ATOM``."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ExtAtom"

    def __eq__(self, other):
        return isinstance(other, _ExtAtom)

    def __hash__(self):
        return hash("ExtAtom")


TAU = _Tau()
ENT_ATOM = _EntAtom()
EXT_ATOM = _ExtAtom()


class EventMsg(Message):
    """An externally observable event ``e``: a kind tag plus a value.

    Events are what event traces (behaviours) are made of; refinement
    and equivalence compare sequences of these.
    """

    __slots__ = ("kind", "value")

    def __init__(self, kind, value=None):
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("EventMsg is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, EventMsg)
            and self.kind == other.kind
            and self.value == other.value
        )

    def __hash__(self):
        return hash(("EventMsg", self.kind, self.value))

    def __repr__(self):
        return "EventMsg({!r}, {!r})".format(self.kind, self.value)


class RetMsg(Message):
    """Termination of the current activation, carrying the return value."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("RetMsg is immutable")

    def __eq__(self, other):
        return isinstance(other, RetMsg) and self.value == other.value

    def __hash__(self):
        return hash(("RetMsg", self.value))

    def __repr__(self):
        return "RetMsg({!r})".format(self.value)


class CallMsg(Message):
    """A cross-module call: function name and argument values.

    The emitting core must already be in a "waiting" state; the global
    semantics resumes it through ``after_external`` once the callee
    returns.
    """

    __slots__ = ("fname", "args")

    def __init__(self, fname, args=()):
        object.__setattr__(self, "fname", fname)
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name, value):
        raise AttributeError("CallMsg is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, CallMsg)
            and self.fname == other.fname
            and self.args == other.args
        )

    def __hash__(self):
        return hash(("CallMsg", self.fname, self.args))

    def __repr__(self):
        return "CallMsg({!r}, {!r})".format(self.fname, self.args)


class SpawnMsg(Message):
    """Thread creation: start a new thread running ``fname``.

    The paper's future-work extension (Sec. 8): "the spawn step in the
    operational semantics needs to assign a new F to each newly created
    thread; in simulations spawns should be handled in a similar way as
    context switches" — which is exactly what the global semantics and
    the simulation checker do with this message.
    """

    __slots__ = ("fname",)

    def __init__(self, fname):
        object.__setattr__(self, "fname", fname)

    def __setattr__(self, name, value):
        raise AttributeError("SpawnMsg is immutable")

    def __eq__(self, other):
        return isinstance(other, SpawnMsg) and self.fname == other.fname

    def __hash__(self):
        return hash(("SpawnMsg", self.fname))

    def __repr__(self):
        return "SpawnMsg({!r})".format(self.fname)


def is_silent(msg):
    """True iff ``msg`` is ``τ``."""
    return msg is TAU or isinstance(msg, _Tau)


def is_observable(msg):
    """True iff the message contributes to the event trace."""
    return isinstance(msg, EventMsg)
