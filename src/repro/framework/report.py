"""Fig. 13-style reporting: per-pass validation effort tables.

The paper's evaluation is a table of per-pass proof effort (Coq lines
of spec/proof, CompCert vs. theirs). Our analogue measures the
mechanical checking effort of translation validation per pass: number
of obligations discharged, and the "CompCert vs Ours" column pair
becomes *baseline validation* (message matching only, no footprint
obligations — what a sequential validator needs) vs *footprint-
preserving validation* (the paper's additional FPmatch/HG/LG/Rely
obligations).
"""

from repro import obs
from repro.simulation.validate import sample_args, validate_compilation


class PassRow:
    """One row of the per-pass table."""

    def __init__(self, pass_name, baseline_obligations,
                 fp_obligations, rely_moves, messages, src_steps,
                 tgt_steps, seconds):
        self.pass_name = pass_name
        self.baseline_obligations = baseline_obligations
        self.fp_obligations = fp_obligations
        self.rely_moves = rely_moves
        self.messages = messages
        self.src_steps = src_steps
        self.tgt_steps = tgt_steps
        self.seconds = seconds

    def as_tuple(self):
        return (
            self.pass_name,
            self.baseline_obligations,
            self.fp_obligations,
            self.rely_moves,
            self.messages,
            self.src_steps,
            self.tgt_steps,
            self.seconds,
        )


def per_pass_table(system):
    """Build the Fig. 13-analogue table for a :class:`ClientSystem`.

    Returns a list of :class:`PassRow`, one per pass (aggregated over
    the system's client modules), ordered as in the pipeline.
    """
    mem = system.initial_memory()
    shared = system.shared()
    rows = {}
    order = []
    with obs.span("report.per_pass_table"):
        for result in system.results:
            entries = [
                (name, sample_args(func))
                for name, func in sorted(
                    result.source.module.functions.items()
                )
            ]
            validations = validate_compilation(
                result, mem, shared, entries=entries,
                include_end_to_end=False,
            )
            _merge_rows(rows, order, validations)
    return [rows[name] for name in order]


def _merge_rows(rows, order, validations):
    for val in validations:
        st = val.report.stats
        if not val.report.ok:
            raise AssertionError(
                "validation failed in {}: {}".format(
                    val.pass_name, val.report.failures[:3]
                )
            )
        if val.pass_name not in rows:
            order.append(val.pass_name)
            rows[val.pass_name] = PassRow(
                val.pass_name, 0, 0, 0, 0, 0, 0, 0.0
            )
        row = rows[val.pass_name]
        # Baseline: what a sequential validator discharges —
        # message matching only.
        row.baseline_obligations += st.messages_matched
        # Ours: the footprint-preserving extras on top.
        row.fp_obligations += (
            st.fpmatch_checks + st.scope_checks + st.lg_checks
        )
        row.rely_moves += st.rely_moves
        row.messages += st.messages_matched
        row.src_steps += st.src_steps
        row.tgt_steps += st.tgt_steps
        # Real per-pass elapsed time, measured around each
        # validate_pair call — not an even split of the total.
        row.seconds += val.seconds


def format_table(rows, headers=None):
    """Plain-text table rendering for examples and bench output.

    Rows may be :class:`PassRow`-style objects (anything with an
    ``as_tuple`` method) or plain tuples/lists — the latter is what the
    observability layer's metrics summary uses.
    """
    headers = headers or (
        "Pass",
        "Baseline obl.",
        "FP obl.",
        "Rely moves",
        "Msgs",
        "Src steps",
        "Tgt steps",
        "Time (s)",
    )
    str_rows = [
        [
            "{:.4f}".format(v) if isinstance(v, float) else str(v)
            for v in (
                row.as_tuple() if hasattr(row, "as_tuple") else tuple(row)
            )
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
