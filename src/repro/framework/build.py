"""System builder: MiniC client sources + lock object → linked systems.

A :class:`ClientSystem` bundles everything the theorem checkers need:
the typechecked clients, their full compilation pipelines, the lock
specification/implementation, and program constructors for any stage
and machine model. It performs the linker duties of the Load rule:
consistent global addresses across modules, the object's permission
region threaded into every client as ``forbidden``.
"""

from repro.lang.module import ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.minic import compile_unit, link_units
from repro.langs.x86.tso import X86TSO
from repro.compiler.pipeline import compile_minic
from repro.tso.lockimpl import lock_impl
from repro.tso.lockspec import DEFAULT_LOCK_ADDR, lock_spec


class ClientSystem:
    """Compiled MiniC clients, optionally linked with the lock object."""

    def __init__(self, client_sources, entries, use_lock=False,
                 lock_addr=DEFAULT_LOCK_ADDR, optimize=False):
        self.entries = tuple(entries)
        self.use_lock = use_lock
        self.lock_addr = lock_addr
        self.optimize = optimize

        extra_symbols = {"L": lock_addr} if use_lock else None
        units = [compile_unit(src) for src in client_sources]
        modules, genvs, symbols = link_units(units, extra_symbols)
        if use_lock:
            modules = [
                m.with_forbidden({lock_addr}) for m in modules
            ]
            self.spec_module, self.spec_ge = lock_spec(lock_addr)
            self.impl_module, self.impl_ge = lock_impl(lock_addr)
        else:
            self.spec_module = self.spec_ge = None
            self.impl_module = self.impl_ge = None
        self.client_modules = modules
        self.client_genvs = genvs
        self.symbols = symbols
        self.results = [
            compile_minic(m, optimize=optimize) for m in modules
        ]

    # ----- program constructors -------------------------------------------

    def _object_decl(self, use_impl=False, impl_lang=X86TSO):
        if not self.use_lock:
            return None
        if use_impl:
            return ModuleDecl(impl_lang, self.impl_ge, self.impl_module)
        return ModuleDecl(CIMP, self.spec_ge, self.spec_module)

    def _program(self, stages, client_lang=None, use_impl=False,
                 client_decls_lang=None):
        decls = []
        for stage, ge in zip(stages, self.client_genvs):
            lang = client_decls_lang or stage.lang
            decls.append(ModuleDecl(lang, ge, stage.module))
        obj = self._object_decl(use_impl)
        if obj is not None:
            decls.append(obj)
        return Program(decls, self.entries)

    def source_program(self):
        """``P``: Clight clients + γ_o (Fig. 3 top)."""
        return self._program([r.source for r in self.results])

    def stage_program(self, pass_name):
        """Clients at a named pipeline stage + γ_o."""
        return self._program(
            [r.stage(pass_name) for r in self.results]
        )

    def sc_program(self):
        """``P_sc``: x86-SC clients + γ_o (Fig. 3 middle)."""
        return self._program([r.target for r in self.results])

    def tso_program(self):
        """``P_rmm``: x86-TSO clients + π_o (Fig. 3 bottom)."""
        return self._program(
            [r.target for r in self.results],
            use_impl=True,
            client_decls_lang=X86TSO,
        )

    # ----- shared state ----------------------------------------------------

    def initial_memory(self):
        return self.source_program().initial_memory()

    def shared(self):
        return self.source_program().shared_addresses()

    def target_stages(self):
        return [r.target for r in self.results]


def lock_counter_system(nthreads=2):
    """The canonical Fig. 10 workload: ``inc ∥ … ∥ inc``."""
    client = """
    extern void lock();
    extern void unlock();
    int x = 0;
    void inc() {
      int tmp;
      lock();
      tmp = x;
      x ++;
      unlock();
      print(tmp);
    }
    """
    return ClientSystem([client], ["inc"] * nthreads, use_lock=True)
