"""End-to-end theorem pipelines: system building (linking clients with
the lock object), the ``Correct``/``GCorrect``/Thm 15 checks, and the
Fig. 13-style effort reports."""

from repro.framework.build import ClientSystem, lock_counter_system
from repro.framework.theorems import (
    TheoremResult,
    check_correct,
    check_gcorrect,
    check_idtrans,
    check_reachclose_all,
    check_theorem15,
    framework_steps,
)
from repro.framework.report import PassRow, format_table, per_pass_table

__all__ = [
    "ClientSystem",
    "lock_counter_system",
    "TheoremResult",
    "check_correct",
    "check_reachclose_all",
    "check_idtrans",
    "check_gcorrect",
    "check_theorem15",
    "framework_steps",
    "PassRow",
    "per_pass_table",
    "format_table",
]
