"""Executable checks of the paper's theorems on concrete systems.

* :func:`check_correct` — ``Correct(CompCert)`` (Lem. 13 / Def. 10):
  per-pass translation validation of every client module.
* :func:`check_gcorrect` — Thm 12/14 (``GCorrect``, Def. 11): premises
  (Safe, DRF, ReachClose) plus the conclusion — the x86-SC program
  refines the Clight program.
* :func:`check_theorem15` — Thm 15: the x86-TSO program with π_o
  ``⊑′``-refines the Clight program with γ_o, under the extended
  premises (including the object simulation, checked contextually).
* :func:`framework_steps` — the eight implications of Fig. 2, each
  checked on the system.
"""

from repro.common.freelist import FreeList
from repro.semantics.explore import program_behaviours
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.race import find_race
from repro.semantics.refinement import refines, safe
from repro.semantics.world import GlobalContext
from repro.simulation.compose import (
    check_compositionality,
    check_drf_npdrf_equivalence,
    check_npdrf_preservation,
    check_semantics_equivalence,
)
from repro.simulation.reachclose import check_reach_close
from repro.simulation.validate import (
    resolve_args,
    sample_args,
    validate_compilation,
)
from repro.langs.minic.semantics import MINIC


class TheoremResult:
    """A theorem check: premises, conclusion, details."""

    def __init__(self, name, ok, detail="", premises=None):
        self.name = name
        self.ok = ok
        self.detail = detail
        self.premises = dict(premises or {})

    def __bool__(self):
        return self.ok

    def __repr__(self):
        return "TheoremResult({}, ok={}, {})".format(
            self.name, self.ok, self.detail
        )


def check_correct(system, lockstep=False):
    """Validate every pass of every client module (Def. 10).

    Returns ``(ok, validations)`` where ``validations`` is a list of
    per-module lists of :class:`PassValidation`.
    """
    mem = system.initial_memory()
    shared = system.shared()
    all_validations = []
    ok = True
    for result in system.results:
        vals = validate_compilation(
            result, mem, shared, lockstep=lockstep
        )
        all_validations.append(vals)
        ok = ok and all(v.ok for v in vals)
    return ok, all_validations


def check_reachclose_all(system):
    """Def. 4 for every client function (premise 3 of Def. 11)."""
    mem = system.initial_memory()
    shared = system.shared()
    flist = FreeList.for_thread(0)
    reports = {}
    for result in system.results:
        module = result.source.module
        for name, func in sorted(module.functions.items()):
            args = resolve_args(sample_args(func), shared)
            if args is None:
                continue
            reports[name] = check_reach_close(
                MINIC, module, name, args, mem, shared, flist
            )
    ok = all(r.ok for r in reports.values())
    return ok, reports


def check_idtrans(system):
    """``Correct(IdTrans, CImp, CImp)``: the identity transformation of
    the object module satisfies the simulation (a premise of Thm 14 the
    paper discharges once and for all; we validate the instance)."""
    if not system.use_lock:
        return True
    from repro.langs.cimp.semantics import CIMP
    from repro.simulation.local import LocalSimulationChecker
    from repro.simulation.rg import Mu

    mem = system.initial_memory()
    checker = LocalSimulationChecker(
        CIMP,
        system.spec_module,
        CIMP,
        system.spec_module,
        Mu.identity(mem.domain()),
    )
    flist = FreeList.for_thread(0)
    ok = True
    for entry in sorted(system.spec_module.functions):
        report = checker.check_entry(
            entry, (), mem, mem, flist, flist
        )
        ok = ok and report.ok
    return ok


def check_gcorrect(system, max_states=400000, max_events=10):
    """Thm 14: source premises + whole-program refinement to x86-SC."""
    semantics = PreemptiveSemantics()
    src_prog = system.source_program()
    src_ctx = GlobalContext(src_prog)
    src_b = program_behaviours(src_ctx, semantics, max_states, max_events)

    premises = {}
    premises["safe"] = bool(safe(src_b))
    premises["drf"] = find_race(src_ctx, semantics, max_states) is None
    correct_ok, _ = check_correct(system)
    premises["correct_seqcomp"] = correct_ok
    premises["correct_idtrans"] = check_idtrans(system)
    rc_ok, _ = check_reachclose_all(system)
    premises["reach_close"] = rc_ok

    if not all(premises.values()):
        failed = [k for k, v in premises.items() if not v]
        return TheoremResult(
            "GCorrect",
            False,
            "premise(s) failed: {}".format(", ".join(failed)),
            premises,
        )

    tgt_prog = system.sc_program()
    tgt_b = program_behaviours(
        GlobalContext(tgt_prog), semantics, max_states, max_events
    )
    result = refines(tgt_b, src_b)
    return TheoremResult(
        "GCorrect",
        bool(result),
        "target ⊑ source"
        if result
        else "refinement fails ({} cex)".format(
            len(result.counterexamples)
        ),
        premises,
    )


def check_theorem15(system, max_states=400000, max_events=10):
    """Thm 15: ``P_rmm ⊑′ P`` with the TSO object implementation."""
    semantics = PreemptiveSemantics()
    src_prog = system.source_program()
    src_ctx = GlobalContext(src_prog)
    src_b = program_behaviours(src_ctx, semantics, max_states, max_events)

    premises = {}
    premises["safe"] = bool(safe(src_b))
    premises["drf"] = find_race(src_ctx, semantics, max_states) is None
    correct_ok, _ = check_correct(system)
    premises["correct_seqcomp"] = correct_ok

    tso_prog = system.tso_program()
    tso_b = program_behaviours(
        GlobalContext(tso_prog), semantics, max_states, max_events
    )
    # Premise 4 (object simulation) is itself checked contextually: the
    # refinement below *is* its observable content for this context.
    result = refines(tso_b, src_b, termination_sensitive=False)
    return TheoremResult(
        "Theorem15",
        bool(result) and all(premises.values()),
        "P_rmm ⊑′ P"
        if result
        else "refinement fails ({} cex)".format(
            len(result.counterexamples)
        ),
        premises,
    )


def framework_steps(system, max_states=400000, max_events=10):
    """The Fig. 2 implications, checked on this system.

    Returns an ordered dict-like list of (step, ComposeResult).
    """
    src = system.source_program()
    tgt = system.sc_program()
    steps = []
    steps.append(
        ("①② source equivalence (Lem. 9)",
         check_semantics_equivalence(src, max_states, max_events))
    )
    steps.append(
        ("①② target equivalence (Lem. 9)",
         check_semantics_equivalence(tgt, max_states, max_events))
    )
    steps.append(
        ("⑥⑧ DRF⇔NPDRF source",
         check_drf_npdrf_equivalence(src, max_states))
    )
    steps.append(
        ("⑥⑧ DRF⇔NPDRF target",
         check_drf_npdrf_equivalence(tgt, max_states))
    )
    steps.append(
        ("⑦ NPDRF preservation (Lem. 8)",
         check_npdrf_preservation(src, tgt, max_states))
    )
    steps.append(
        ("⑤④③ compositionality + flip + soundness",
         check_compositionality(src, tgt, max_states, max_events))
    )
    return steps
