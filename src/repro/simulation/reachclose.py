"""ReachClose (Def. 4): the source-side obligation of compilation.

A module is reach-closed when, executing from any valid initial state
under any environment interference satisfying the rely ``R``, every
step's footprint stays in scope (``Δ ⊆ F ∪ S``) and the shared memory
stays closed — i.e. the module never walks out of its own freelist and
the shared region, and never leaks local pointers into shared memory.

The checker runs the module with rely perturbations injected at switch
points and verifies ``HG`` at every step.
"""

from repro.common.values import VInt
from repro.lang.messages import CallMsg, RetMsg, is_silent
from repro.lang.steps import Step, StepAbort
from repro.lang.wd import FLIST_EXTENT
from repro.simulation import rg


class ReachCloseReport:
    def __init__(self):
        self.failures = []
        self.steps_checked = 0
        self.rely_moves = 0

    @property
    def ok(self):
        return not self.failures

    def fail(self, message):
        self.failures.append(message)

    def __repr__(self):
        return "ReachCloseReport(ok={}, steps={})".format(
            self.ok, self.steps_checked
        )


def _perturb(mem, shared, limit):
    variants = [mem]
    count = 0
    for addr in sorted(shared):
        if count >= limit:
            break
        value = mem.load(addr)
        if not isinstance(value, VInt):
            continue
        variants.append(mem.store(addr, VInt(value.n + 5)))
        count += 1
    return variants


def check_reach_close(lang, module, entry, args, initial_mem, shared,
                      flist, max_steps=5000, rely_limit=1,
                      ext_returns=(VInt(0), VInt(7)), report=None):
    """Check ``ReachClose`` for one entry of one module."""
    report = report or ReachCloseReport()
    flist_addrs = flist.addresses(FLIST_EXTENT)
    core = lang.init_core(module, entry, args)
    if core is None:
        report.fail("entry {!r} not defined".format(entry))
        return report

    stack = [(core, initial_mem, 0)]
    while stack:
        core, mem, depth = stack.pop()
        if depth > max_steps:
            report.fail("step budget exceeded")
            continue
        outs = lang.step(module, core, mem, flist)
        if not outs:
            continue
        if len(outs) != 1:
            report.fail("nondeterministic module step")
            continue
        out = outs[0]
        if isinstance(out, StepAbort):
            # Aborting is a safety failure of the *program*, not a
            # scope violation; ReachClose is about footprints.
            continue
        assert isinstance(out, Step)
        report.steps_checked += 1
        if not rg.hg(out.fp, out.mem, flist_addrs, shared):
            report.fail(
                "HG violated at step {} (fp={!r})".format(depth, out.fp)
            )
            continue
        msg = out.msg
        if is_silent(msg):
            stack.append((out.core, out.mem, depth + 1))
            continue
        if isinstance(msg, RetMsg):
            continue
        if isinstance(msg, CallMsg):
            for retval in ext_returns:
                resumed = lang.after_external(out.core, retval)
                for mem2 in _perturb(out.mem, shared, rely_limit):
                    report.rely_moves += 1
                    stack.append((resumed, mem2, depth + 1))
            continue
        # Events / atomic boundaries: switch points.
        for mem2 in _perturb(out.mem, shared, rely_limit):
            report.rely_moves += 1
            stack.append((out.core, mem2, depth + 1))
    return report
