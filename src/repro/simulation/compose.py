"""Whole-program consequences of the local simulation (Lems. 6–9).

The Coq development *derives* these; the executable analogue checks
them on concrete programs by comparing enumerated behaviour sets:

* :func:`check_compositionality` (Lem. 6 + 7, steps ⑤④③ of Fig. 2):
  per-module local simulations compose into whole-program refinement —
  the target program's behaviours (preemptive and non-preemptive) are
  included in the source's, and under determinism the sets coincide.
* :func:`check_npdrf_preservation` (Lem. 8, step ⑦): if the source is
  NPDRF, so is the target.
* :func:`check_semantics_equivalence` (Lem. 9, steps ①②): a DRF
  program has the same behaviours preemptively and non-preemptively.
"""

from repro.semantics.explore import program_behaviours
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.race import find_race
from repro.semantics.refinement import equivalent, refines
from repro.semantics.world import GlobalContext


class ComposeResult:
    """Outcome of a whole-program check, with a short explanation."""

    def __init__(self, ok, detail=""):
        self.ok = ok
        self.detail = detail

    def __bool__(self):
        return self.ok

    def __repr__(self):
        return "ComposeResult(ok={}, {})".format(self.ok, self.detail)


def _behaviours(program, semantics, max_states, max_events):
    ctx = GlobalContext(program)
    return program_behaviours(ctx, semantics, max_states, max_events)


def check_compositionality(src_program, tgt_program, max_states=200000,
                           max_events=10):
    """Lems. 6+7 and the flip: target ≈ source, both semantics."""
    for semantics in (PreemptiveSemantics(), NonPreemptiveSemantics()):
        src_b = _behaviours(
            src_program, semantics, max_states, max_events
        )
        tgt_b = _behaviours(
            tgt_program, semantics, max_states, max_events
        )
        down = refines(tgt_b, src_b)
        if not down:
            return ComposeResult(
                False,
                "{}: target ⋢ source ({} counterexamples)".format(
                    semantics.name, len(down.counterexamples)
                ),
            )
        both = equivalent(src_b, tgt_b)
        if not both:
            return ComposeResult(
                False,
                "{}: flip failed (source has behaviours the "
                "deterministic target lacks)".format(semantics.name),
            )
    return ComposeResult(True, "target ≈ source in both semantics")


def check_npdrf_preservation(src_program, tgt_program,
                             max_states=200000):
    """Lem. 8: NPDRF(source) ⇒ NPDRF(target)."""
    semantics = NonPreemptiveSemantics()
    src_race = find_race(
        GlobalContext(src_program), semantics, max_states
    )
    if src_race is not None:
        return ComposeResult(
            True, "premise NPDRF(source) does not hold; vacuous"
        )
    tgt_race = find_race(
        GlobalContext(tgt_program), semantics, max_states
    )
    if tgt_race is not None:
        return ComposeResult(
            False, "target races: {!r}".format(tgt_race)
        )
    return ComposeResult(True, "NPDRF preserved")


def check_semantics_equivalence(program, max_states=200000,
                                max_events=10):
    """Lem. 9: DRF ⇒ preemptive ≈ non-preemptive behaviours."""
    race = find_race(
        GlobalContext(program), PreemptiveSemantics(), max_states
    )
    if race is not None:
        return ComposeResult(
            True, "premise DRF does not hold; vacuous"
        )
    pre = _behaviours(
        program, PreemptiveSemantics(), max_states, max_events
    )
    non = _behaviours(
        program, NonPreemptiveSemantics(), max_states, max_events
    )
    result = equivalent(pre, non)
    if not result:
        return ComposeResult(
            False,
            "behaviour sets differ: {} counterexamples".format(
                len(result.counterexamples)
            ),
        )
    return ComposeResult(True, "preemptive ≈ non-preemptive")


def check_drf_npdrf_equivalence(program, max_states=200000):
    """Steps ⑥⑧: DRF(P) ⇔ NPDRF(P)."""
    drf_race = find_race(
        GlobalContext(program), PreemptiveSemantics(), max_states
    )
    npdrf_race = find_race(
        GlobalContext(program), NonPreemptiveSemantics(), max_states
    )
    agree = (drf_race is None) == (npdrf_race is None)
    return ComposeResult(
        agree,
        "DRF={} NPDRF={}".format(drf_race is None, npdrf_race is None),
    )
