"""The footprint-preserving compositional simulation (Sec. 4) and its
whole-program consequences, as executable checkers."""

from repro.simulation.rg import Mu, fp_match, hg, inv, lg, rely
from repro.simulation.local import (
    LocalSimulationChecker,
    SimulationReport,
    SimulationStats,
)
from repro.simulation.reachclose import ReachCloseReport, check_reach_close
from repro.simulation.determinism import (
    DeterminismReport,
    check_determinism,
)
from repro.simulation.compose import (
    ComposeResult,
    check_compositionality,
    check_drf_npdrf_equivalence,
    check_npdrf_preservation,
    check_semantics_equivalence,
)
from repro.simulation.wholeprog import (
    WholeProgramSimResult,
    check_simulation_and_flip,
    check_whole_program_simulation,
)
from repro.simulation.validate import (
    PassValidation,
    sample_args,
    validate_compilation,
    validate_pair,
)

__all__ = [
    "Mu",
    "fp_match",
    "inv",
    "hg",
    "lg",
    "rely",
    "LocalSimulationChecker",
    "SimulationReport",
    "SimulationStats",
    "ReachCloseReport",
    "check_reach_close",
    "DeterminismReport",
    "check_determinism",
    "ComposeResult",
    "check_compositionality",
    "check_npdrf_preservation",
    "check_semantics_equivalence",
    "check_drf_npdrf_equivalence",
    "WholeProgramSimResult",
    "check_whole_program_simulation",
    "check_simulation_and_flip",
    "PassValidation",
    "sample_args",
    "validate_compilation",
    "validate_pair",
]
