"""Footprint matching and rely/guarantee conditions (Fig. 8).

The triple ``µ = (S, S̄, f)`` records the shared regions of the source
and target and the injective address mapping between them.
``FPmatch(µ, Δ, δ)`` is the footprint-consistency condition at the core
of the paper's simulation: the *shared* part of the target footprint
must be contained in the (mapped) source footprint, and shared target
writes must come from source writes — target reads may also come from
source writes, because weakening a write to a read can never introduce
a race.

``HG``/``LG`` are the high/low-level guarantees a module provides at
switch points, ``Rely`` the environment moves it must tolerate, and
``Inv`` the cross-language memory invariant (the role CompCert's memory
injections play).
"""

from repro.common.memory import closed_region, eq_on, forward
from repro.common.values import VPtr


class Mu:
    """``µ = (S, S̄, f)``: shared regions plus the address mapping."""

    __slots__ = ("src_shared", "tgt_shared", "mapping")

    def __init__(self, src_shared, tgt_shared, mapping):
        self.src_shared = frozenset(src_shared)
        self.tgt_shared = frozenset(tgt_shared)
        self.mapping = dict(mapping)

    def __repr__(self):
        return "Mu(|S|={}, |S̄|={})".format(
            len(self.src_shared), len(self.tgt_shared)
        )

    @classmethod
    def identity(cls, shared):
        """The µ of an identity compiler over a shared region."""
        shared = frozenset(shared)
        return cls(shared, shared, {a: a for a in shared})

    def well_formed(self):
        """``wf(µ)``: f injective, total on S, image exactly S̄."""
        values = list(self.mapping.values())
        if len(set(values)) != len(values):
            return False
        if set(self.mapping) != set(self.src_shared):
            return False
        return set(values) == set(self.tgt_shared)

    def map_addr(self, addr):
        return self.mapping.get(addr)

    def map_region(self, region):
        """``f{{region}}``."""
        return {
            self.mapping[a] for a in region if a in self.mapping
        }

    def map_value(self, value):
        """``f̂(v)``: map addresses inside values; None when unmapped."""
        if isinstance(value, VPtr):
            mapped = self.mapping.get(value.addr)
            if mapped is None:
                return None
            return VPtr(mapped)
        return value


def fp_match(mu, src_fp, tgt_fp):
    """``FPmatch(µ, Δ, δ)`` (Fig. 8)."""
    src_reads_writes = mu.map_region(src_fp.rs | src_fp.ws)
    src_writes = mu.map_region(src_fp.ws)
    if not (tgt_fp.rs & mu.tgt_shared) <= src_reads_writes:
        return False
    return (tgt_fp.ws & mu.tgt_shared) <= src_writes


def inv(mu, src_mem, tgt_mem):
    """``Inv(f, Σ, σ)``: related contents at related addresses."""
    for addr in mu.src_shared:
        if addr not in src_mem:
            continue
        mapped = mu.mapping.get(addr)
        if mapped is None or mapped not in tgt_mem:
            return False
        src_val = src_mem.load(addr)
        expected = mu.map_value(src_val)
        if expected is None:
            # A source pointer to unmapped (local) memory stored in
            # shared state would already violate closedness.
            return False
        if tgt_mem.load(mapped) != expected:
            return False
    return True


def hg(src_fp, src_mem, flist_addrs, shared):
    """``HG(Δ, Σ, F, S)``: footprint in scope, shared memory closed."""
    if not src_fp.within(set(flist_addrs) | set(shared)):
        return False
    return closed_region(shared, src_mem)


def lg(mu, tgt_fp, tgt_mem, tgt_flist_addrs, src_fp, src_mem):
    """``LG(µ, (δ, σ, F), (Δ, Σ))``: the low-level guarantee."""
    if not tgt_fp.within(set(tgt_flist_addrs) | set(mu.tgt_shared)):
        return False
    if not closed_region(mu.tgt_shared, tgt_mem):
        return False
    if not fp_match(mu, src_fp, tgt_fp):
        return False
    return inv(mu, src_mem, tgt_mem)


def rely_one(mem, mem2, flist_addrs, shared):
    """``R(Σ, Σ', F, S)``: an acceptable environment move on one side."""
    if not eq_on(mem, mem2, flist_addrs):
        return False
    if not closed_region(shared, mem2):
        return False
    return forward(mem, mem2)


def rely(mu, src_mem, src_mem2, src_flist_addrs, tgt_mem, tgt_mem2,
         tgt_flist_addrs):
    """``Rely(µ, (Σ, Σ', F), (σ, σ', F̄))``: related environment moves."""
    if not rely_one(src_mem, src_mem2, src_flist_addrs, mu.src_shared):
        return False
    if not rely_one(tgt_mem, tgt_mem2, tgt_flist_addrs, mu.tgt_shared):
        return False
    return inv(mu, src_mem2, tgt_mem2)
