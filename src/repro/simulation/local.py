"""The module-local footprint-preserving downward simulation (Defs. 2, 3),
as an executable checker.

In Coq the simulation is *proved* once per compiler pass; here it is
*checked* per compiled module — translation validation. The checker
co-executes the source and target modules from related initial states
and discharges, at every non-silent message (the switch points of
Def. 3 case 2):

* message match — same event / same return value / same external call,
  modulo the address mapping ``µ.f``;
* scope — accumulated footprints lie inside ``F ∪ S`` on both sides
  (the ``HG`` side of case 2 and the in-scope conditions of case 1);
* ``FPmatch(µ, Δ, δ)`` on the *accumulated* segment footprints (the
  accumulation is what admits reorderings such as the ``y=2; x=1``
  swap of example (2.2));
* ``LG`` — target shared memory closed and ``Inv``-related to the
  source's;
* continuation under ``Rely`` — environment moves rewriting shared
  memory (consistently on both sides) between segments, and a small
  set of candidate return values for external calls.

Between messages both sides must be deterministic (the paper's
``det(tl)`` premise for flipping the simulation); the checker reports a
violation otherwise. Termination preservation is approximated by a
τ-step budget per segment (the well-founded index of Def. 3).

The ``lockstep`` flag implements the ABL-FP ablation: instead of the
accumulated FPmatch, it requires the per-step sequences of shared
footprints to match exactly — the stricter CompCertTSO-style criterion
that rejects legal reorderings.
"""

from repro import obs
from repro.common.footprint import EMP
from repro.common.values import VInt
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
    is_silent,
)
from repro.lang.steps import Step, StepAbort
from repro.lang.wd import FLIST_EXTENT
from repro.simulation import rg


class SimulationStats:
    """Counted obligations — the raw material of the Fig. 13 table."""

    def __init__(self):
        self.segments = 0
        self.messages_matched = 0
        self.fpmatch_checks = 0
        self.scope_checks = 0
        self.lg_checks = 0
        self.rely_moves = 0
        self.ext_calls = 0
        self.src_steps = 0
        self.tgt_steps = 0
        self.vacuous_aborts = 0

    def merged(self, other):
        for field in vars(self):
            setattr(
                self, field, getattr(self, field) + getattr(other, field)
            )
        return self

    def as_dict(self):
        return dict(vars(self))


class SimulationReport:
    """Result of validating one module against its compilation."""

    def __init__(self):
        self.failures = []
        self.stats = SimulationStats()

    @property
    def ok(self):
        return not self.failures

    def fail(self, message):
        self.failures.append(message)

    def __repr__(self):
        return "SimulationReport(ok={}, failures={})".format(
            self.ok, len(self.failures)
        )


class _Segment:
    """Result of running one side to its next non-silent message."""

    __slots__ = ("kind", "msg", "core", "mem", "acc", "step_fps",
                 "steps", "reason")

    def __init__(self, kind, msg=None, core=None, mem=None, acc=EMP,
                 step_fps=(), steps=0, reason=""):
        self.kind = kind  # "msg" | "abort" | "stuck" | "nondet" | "budget"
        self.msg = msg
        self.core = core
        self.mem = mem
        self.acc = acc
        self.step_fps = tuple(step_fps)
        self.steps = steps
        self.reason = reason


def _run_to_message(lang, module, core, mem, flist, shared, max_tau):
    """Deterministically run to the next non-silent message."""
    acc = EMP
    step_fps = []
    steps = 0
    while True:
        outs = lang.step(module, core, mem, flist)
        if not outs:
            return _Segment("stuck", core=core, mem=mem, acc=acc,
                            step_fps=step_fps, steps=steps)
        if len(outs) != 1:
            return _Segment(
                "nondet",
                reason="{} outcomes in {}".format(len(outs), lang.name),
            )
        out = outs[0]
        if isinstance(out, StepAbort):
            return _Segment("abort", reason=out.reason, acc=acc,
                            steps=steps)
        assert isinstance(out, Step)
        steps += 1
        acc = acc.union(out.fp)
        shared_part = out.fp.restricted(shared)
        if not shared_part.is_empty():
            step_fps.append(shared_part)
        if is_silent(out.msg):
            core, mem = out.core, out.mem
            if steps > max_tau:
                return _Segment(
                    "budget",
                    reason="{} exceeded {} silent steps".format(
                        lang.name, max_tau
                    ),
                )
            continue
        return _Segment(
            "msg",
            msg=out.msg,
            core=out.core,
            mem=out.mem,
            acc=acc,
            step_fps=step_fps,
            steps=steps,
        )


def _related_msg(mu, src_msg, tgt_msg):
    """Message match modulo the address mapping."""
    if isinstance(src_msg, EventMsg):
        return src_msg == tgt_msg
    if isinstance(src_msg, RetMsg):
        if not isinstance(tgt_msg, RetMsg):
            return False
        return mu.map_value(src_msg.value) == tgt_msg.value
    if isinstance(src_msg, CallMsg):
        if not isinstance(tgt_msg, CallMsg):
            return False
        if src_msg.fname != tgt_msg.fname:
            return False
        if len(src_msg.args) != len(tgt_msg.args):
            return False
        return all(
            mu.map_value(a) == b
            for a, b in zip(src_msg.args, tgt_msg.args)
        )
    if isinstance(src_msg, SpawnMsg):
        return src_msg == tgt_msg
    if src_msg in (ENT_ATOM, EXT_ATOM):
        return src_msg == tgt_msg
    return False


def _rely_variants(mu, src_mem, tgt_mem, limit):
    """Environment moves: rewrite shared cells consistently on both
    sides (always including the identity move)."""
    variants = [(src_mem, tgt_mem)]
    count = 0
    for addr in sorted(mu.src_shared):
        if count >= limit:
            break
        value = src_mem.load(addr)
        if not isinstance(value, VInt):
            continue
        mapped = mu.mapping[addr]
        new = VInt(value.n + 3)
        src2 = src_mem.store(addr, new)
        tgt2 = tgt_mem.store(mapped, new)
        if src2 is None or tgt2 is None:
            continue
        variants.append((src2, tgt2))
        count += 1
    return variants


class LocalSimulationChecker:
    """Checks ``(sl, ge, γ) ≼_φ (tl, ge', π)`` on concrete executions."""

    def __init__(self, src_lang, src_module, tgt_lang, tgt_module, mu,
                 max_tau=5000, max_segments=500, rely_limit=1,
                 rely_budget=64, ext_returns=(VInt(0), VInt(7)),
                 lockstep=False, roach_motel=False):
        self.src_lang = src_lang
        self.src_module = src_module
        self.tgt_lang = tgt_lang
        self.tgt_module = tgt_module
        self.mu = mu
        self.max_tau = max_tau
        self.max_segments = max_segments
        self.rely_limit = rely_limit
        #: Total rely/return branchings per entry. Branching is
        #: exponential in the number of switch points along a path, so
        #: coverage is budgeted: once exhausted, co-execution continues
        #: along the identity environment only.
        self.rely_budget = rely_budget
        self.ext_returns = tuple(ext_returns)
        self.lockstep = lockstep
        #: Roach-motel mode (the paper's future-work reordering): keep
        #: the accumulated footprints alive across atomic boundaries,
        #: so accesses the target moves *into* an atomic block still
        #: match footprints the source produced before entering it.
        #: Footprints are still cleared at events, calls and returns —
        #: the points where effects become visible to the environment.
        self.roach_motel = roach_motel

    def check_entry(self, entry, args, src_mem, tgt_mem, src_flist,
                    tgt_flist, report=None):
        """Validate one entry point from one pair of initial memories."""
        report = report or SimulationReport()
        if not obs.enabled:
            return self._check_entry(
                entry, args, src_mem, tgt_mem, src_flist, tgt_flist,
                report,
            )
        seg0 = report.stats.segments
        fail0 = len(report.failures)
        with obs.span(
            "simulate.entry",
            entry=entry,
            src=self.src_lang.name,
            tgt=self.tgt_lang.name,
        ) as sp:
            self._check_entry(
                entry, args, src_mem, tgt_mem, src_flist, tgt_flist,
                report,
            )
            sp.set(
                segments=report.stats.segments - seg0,
                failures=len(report.failures) - fail0,
            )
        return report

    def _check_entry(self, entry, args, src_mem, tgt_mem, src_flist,
                     tgt_flist, report):
        mu = self.mu
        if not mu.well_formed():
            report.fail("µ is not well-formed")
            return report
        if not rg.inv(mu, src_mem, tgt_mem):
            report.fail("initial memories not Inv-related")
            return report

        src_core = self.src_lang.init_core(
            self.src_module, entry, args
        )
        mapped_args = tuple(mu.map_value(a) for a in args)
        tgt_core = self.tgt_lang.init_core(
            self.tgt_module, entry, mapped_args
        )
        if src_core is None or tgt_core is None:
            report.fail(
                "entry {!r} missing on one side".format(entry)
            )
            return report

        src_fl = src_flist.addresses(FLIST_EXTENT)
        tgt_fl = tgt_flist.addresses(FLIST_EXTENT)

        self._branch_budget = self.rely_budget
        stack = [(src_core, src_mem, tgt_core, tgt_mem, EMP, EMP, 0)]
        while stack:
            (s_core, s_mem, t_core, t_mem, s_carry, t_carry,
             depth) = stack.pop()
            if depth > self.max_segments:
                report.fail("segment budget exceeded")
                continue
            report.stats.segments += 1
            src_seg = _run_to_message(
                self.src_lang, self.src_module, s_core, s_mem,
                src_flist, mu.src_shared, self.max_tau,
            )
            if src_seg.kind == "abort":
                # Source undefined behaviour: obligation vacuous.
                report.stats.vacuous_aborts += 1
                continue
            if src_seg.kind != "msg":
                report.fail(
                    "source segment {}: {}".format(
                        src_seg.kind, src_seg.reason
                    )
                )
                continue
            tgt_seg = _run_to_message(
                self.tgt_lang, self.tgt_module, t_core, t_mem,
                tgt_flist, mu.tgt_shared, self.max_tau,
            )
            if tgt_seg.kind != "msg":
                report.fail(
                    "target segment {} (source had {!r}): {}".format(
                        tgt_seg.kind, src_seg.msg, tgt_seg.reason
                    )
                )
                continue
            report.stats.src_steps += src_seg.steps
            report.stats.tgt_steps += tgt_seg.steps
            src_seg.acc = src_seg.acc.union(s_carry)
            tgt_seg.acc = tgt_seg.acc.union(t_carry)

            if not self._check_obligations(report, src_seg, tgt_seg,
                                           src_fl, tgt_fl):
                continue
            self._continue(report, stack, src_seg, tgt_seg, depth)
        return report

    # ----- obligations ----------------------------------------------------

    def _check_obligations(self, report, src_seg, tgt_seg, src_fl,
                           tgt_fl):
        mu = self.mu
        ok = True
        if not _related_msg(mu, src_seg.msg, tgt_seg.msg):
            report.fail(
                "message mismatch: {!r} vs {!r}".format(
                    src_seg.msg, tgt_seg.msg
                )
            )
            ok = False
        report.stats.messages_matched += 1

        report.stats.scope_checks += 1
        if not rg.hg(src_seg.acc, src_seg.mem, src_fl, mu.src_shared):
            report.fail(
                "HG violated at {!r} (Δ={!r})".format(
                    src_seg.msg, src_seg.acc
                )
            )
            ok = False

        if self.lockstep:
            report.stats.fpmatch_checks += 1
            if src_seg.step_fps != tgt_seg.step_fps:
                report.fail(
                    "lockstep footprint sequences differ at {!r}".format(
                        src_seg.msg
                    )
                )
                ok = False
        else:
            report.stats.fpmatch_checks += 1
            if not rg.fp_match(mu, src_seg.acc, tgt_seg.acc):
                report.fail(
                    "FPmatch violated at {!r}: Δ={!r} δ={!r}".format(
                        src_seg.msg, src_seg.acc, tgt_seg.acc
                    )
                )
                ok = False

        if self.roach_motel and src_seg.msg is ENT_ATOM:
            # Roach-motel mode (acquire side): accesses may be moved
            # forward *into* an atomic block, so the memories need not
            # match at its entry — the deferred LG is enforced at the
            # block's exit, where the moved effects must have landed.
            # (Release-side motion, out of the block, stays rejected:
            # full LG applies at ExtAtom.)
            return ok
        report.stats.lg_checks += 1
        if not rg.lg(mu, tgt_seg.acc, tgt_seg.mem, tgt_fl,
                     src_seg.acc, src_seg.mem):
            report.fail(
                "LG violated at {!r}".format(src_seg.msg)
            )
            ok = False
        return ok

    # ----- continuations ----------------------------------------------------

    def _continue(self, report, stack, src_seg, tgt_seg, depth):
        msg = src_seg.msg
        if isinstance(msg, RetMsg):
            return
        if isinstance(msg, CallMsg):
            report.stats.ext_calls += 1
            returns = self.ext_returns
            if self._branch_budget <= 0:
                returns = returns[:1]
            else:
                self._branch_budget -= 1
            for retval in returns:
                mapped = self.mu.map_value(retval)
                s_core = self.src_lang.after_external(
                    src_seg.core, retval
                )
                t_core = self.tgt_lang.after_external(
                    tgt_seg.core, mapped
                )
                for s_mem, t_mem in self._relys(src_seg.mem,
                                                tgt_seg.mem, report):
                    stack.append(
                        (s_core, s_mem, t_core, t_mem, EMP, EMP,
                         depth + 1)
                    )
            return
        # Events and atomic boundaries: switch points — continue under
        # environment interference. In roach-motel mode the footprints
        # stay accumulated across atomic boundaries (and no rely move
        # intervenes there: the reordering is only sound because the
        # block boundary is not an interference point for the moved
        # accesses).
        carry_here = self.roach_motel and msg is ENT_ATOM
        if carry_here:
            stack.append(
                (src_seg.core, src_seg.mem, tgt_seg.core,
                 tgt_seg.mem, src_seg.acc, tgt_seg.acc, depth + 1)
            )
            return
        for s_mem, t_mem in self._relys(src_seg.mem, tgt_seg.mem,
                                        report):
            stack.append(
                (src_seg.core, s_mem, tgt_seg.core, t_mem, EMP, EMP,
                 depth + 1)
            )

    def _relys(self, src_mem, tgt_mem, report):
        if self._branch_budget <= 0:
            return [(src_mem, tgt_mem)]
        variants = _rely_variants(
            self.mu, src_mem, tgt_mem, self.rely_limit
        )
        self._branch_budget -= len(variants) - 1
        report.stats.rely_moves += len(variants) - 1
        return variants
