"""``det(tl)``: determinism of a module language (the Flip premise).

The paper flips the downward whole-program simulation into an upward
one using determinism of the target modules (Fig. 2 step ④): between
switch points, a deterministic module admits exactly one local run, so
the one-to-one correspondence of switch steps lets the simulation
reverse. The checker explores a module's local step relation from an
entry and reports any state with more than one outcome.
"""

from repro.common.values import VInt
from repro.lang.messages import CallMsg, RetMsg, is_silent
from repro.lang.steps import Step


class DeterminismReport:
    def __init__(self):
        self.states_checked = 0
        self.violations = []

    @property
    def ok(self):
        return not self.violations

    def __repr__(self):
        return "DeterminismReport(ok={}, states={})".format(
            self.ok, self.states_checked
        )


def check_determinism(lang, module, entry, args, initial_mem, flist,
                      max_steps=5000, ext_returns=(VInt(0), VInt(1)),
                      report=None):
    """Explore one entry's local runs; record nondeterministic states."""
    report = report or DeterminismReport()
    core = lang.init_core(module, entry, args)
    if core is None:
        return report
    stack = [(core, initial_mem, 0)]
    seen = set()
    while stack:
        core, mem, depth = stack.pop()
        if depth > max_steps or (core, mem) in seen:
            continue
        seen.add((core, mem))
        outs = lang.step(module, core, mem, flist)
        report.states_checked += 1
        if len(outs) > 1:
            report.violations.append(
                "{} outcomes from {!r}".format(len(outs), core)
            )
            continue
        for out in outs:
            if not isinstance(out, Step):
                continue
            msg = out.msg
            if is_silent(msg) or not isinstance(
                msg, (RetMsg, CallMsg)
            ):
                stack.append((out.core, out.mem, depth + 1))
            elif isinstance(msg, CallMsg):
                for retval in ext_returns:
                    stack.append(
                        (
                            lang.after_external(out.core, retval),
                            out.mem,
                            depth + 1,
                        )
                    )
    return report
