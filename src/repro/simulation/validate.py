"""Translation-validation driver: runs the footprint-preserving
simulation checker over every pass of a compilation.

``Correct(SeqComp)`` (Def. 10) universally quantifies over modules; the
executable analogue validates each *instance*: for every adjacent pair
of pipeline stages, for every function of the module, the checker
co-executes source and target from the linked initial memory (plus
rely perturbations) and discharges the Def. 3 obligations.

Transitivity (Lem. 5) is what makes per-pass validation compose into
whole-pipeline validation — checked here by also validating
source-against-final-target directly.
"""

from repro.common.freelist import FreeList
from repro.common.values import VInt, VPtr
from repro.langs.minic import ast as mc
from repro.simulation.local import LocalSimulationChecker, SimulationReport
from repro.simulation.rg import Mu


def sample_args(func):
    """Representative argument values for a MiniC function signature."""
    args = []
    for i, (_name, ty) in enumerate(func.params):
        if ty == mc.PTR:
            # Point pointer parameters at a shared global; the caller
            # substitutes a real address.
            args.append(("ptr", i))
        else:
            args.append(VInt(i + 1))
    return args


def resolve_args(args, shared):
    pool = sorted(shared)
    resolved = []
    for a in args:
        if isinstance(a, tuple) and a and a[0] == "ptr":
            if not pool:
                return None
            resolved.append(VPtr(pool[a[1] % len(pool)]))
        else:
            resolved.append(a)
    return tuple(resolved)


class PassValidation:
    """Validation outcome for one pass of one module."""

    def __init__(self, pass_name, report):
        self.pass_name = pass_name
        self.report = report

    @property
    def ok(self):
        return self.report.ok

    def __repr__(self):
        return "PassValidation({}, ok={})".format(
            self.pass_name, self.ok
        )


def validate_pair(src_stage, tgt_stage, entries_with_args, initial_mem,
                  shared, lockstep=False, rely_limit=1, max_tau=5000):
    """Validate one adjacent stage pair on the given entries."""
    mu = Mu.identity(shared)
    checker = LocalSimulationChecker(
        src_stage.lang,
        src_stage.module,
        tgt_stage.lang,
        tgt_stage.module,
        mu,
        rely_limit=rely_limit,
        lockstep=lockstep,
        max_tau=max_tau,
    )
    report = SimulationReport()
    flist = FreeList.for_thread(0)
    for entry, args in entries_with_args:
        resolved = resolve_args(args, shared)
        if resolved is None:
            continue
        checker.check_entry(
            entry, resolved, initial_mem, initial_mem, flist, flist,
            report,
        )
    return report


def validate_compilation(result, initial_mem, shared, entries=None,
                         lockstep=False, rely_limit=1,
                         include_end_to_end=True):
    """Validate every pass of a :class:`CompilationResult`.

    ``entries`` defaults to every function of the source module, each
    with representative arguments. Returns a list of
    :class:`PassValidation`, one per pass (plus a final synthetic
    ``"end-to-end"`` entry checking source ≼ x86 directly, witnessing
    transitivity).
    """
    source_module = result.source.module
    if entries is None:
        entries = [
            (name, sample_args(func))
            for name, func in sorted(source_module.functions.items())
        ]
    validations = []
    for pass_name, src_stage, tgt_stage in result.adjacent_pairs():
        report = validate_pair(
            src_stage, tgt_stage, entries, initial_mem, shared,
            lockstep=lockstep, rely_limit=rely_limit,
        )
        validations.append(PassValidation(pass_name, report))
    if include_end_to_end:
        report = validate_pair(
            result.source, result.target, entries, initial_mem, shared,
            lockstep=lockstep, rely_limit=rely_limit,
        )
        validations.append(PassValidation("end-to-end", report))
    return validations
