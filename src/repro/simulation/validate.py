"""Translation-validation driver: runs the footprint-preserving
simulation checker over every pass of a compilation.

``Correct(SeqComp)`` (Def. 10) universally quantifies over modules; the
executable analogue validates each *instance*: for every adjacent pair
of pipeline stages, for every function of the module, the checker
co-executes source and target from the linked initial memory (plus
rely perturbations) and discharges the Def. 3 obligations.

Transitivity (Lem. 5) is what makes per-pass validation compose into
whole-pipeline validation — checked here by also validating
source-against-final-target directly.
"""

import time

from repro import obs
from repro.common.freelist import FreeList
from repro.common.values import VInt, VPtr
from repro.langs.minic import ast as mc
from repro.simulation.local import LocalSimulationChecker, SimulationReport
from repro.simulation.rg import Mu


def sample_args(func):
    """Representative argument values for a MiniC function signature."""
    args = []
    for i, (_name, ty) in enumerate(func.params):
        if ty == mc.PTR:
            # Point pointer parameters at a shared global; the caller
            # substitutes a real address.
            args.append(("ptr", i))
        else:
            args.append(VInt(i + 1))
    return args


def resolve_args(args, shared):
    pool = sorted(shared)
    resolved = []
    for a in args:
        if isinstance(a, tuple) and a and a[0] == "ptr":
            if not pool:
                return None
            resolved.append(VPtr(pool[a[1] % len(pool)]))
        else:
            resolved.append(a)
    return tuple(resolved)


class PassValidation:
    """Validation outcome for one pass of one module.

    ``seconds`` is the real elapsed wall-clock of validating this pass
    (measured around its :func:`validate_pair` call), the raw material
    of the Fig. 13 table's time column.
    """

    def __init__(self, pass_name, report, seconds=0.0):
        self.pass_name = pass_name
        self.report = report
        self.seconds = seconds

    @property
    def ok(self):
        return self.report.ok

    def __repr__(self):
        return "PassValidation({}, ok={})".format(
            self.pass_name, self.ok
        )


def validate_pair(src_stage, tgt_stage, entries_with_args, initial_mem,
                  shared, lockstep=False, rely_limit=1, max_tau=5000):
    """Validate one adjacent stage pair on the given entries."""
    mu = Mu.identity(shared)
    checker = LocalSimulationChecker(
        src_stage.lang,
        src_stage.module,
        tgt_stage.lang,
        tgt_stage.module,
        mu,
        rely_limit=rely_limit,
        lockstep=lockstep,
        max_tau=max_tau,
    )
    report = SimulationReport()
    flist = FreeList.for_thread(0)
    for entry, args in entries_with_args:
        resolved = resolve_args(args, shared)
        if resolved is None:
            continue
        checker.check_entry(
            entry, resolved, initial_mem, initial_mem, flist, flist,
            report,
        )
    return report


def validate_compilation(result, initial_mem, shared, entries=None,
                         lockstep=False, rely_limit=1,
                         include_end_to_end=True):
    """Validate every pass of a :class:`CompilationResult`.

    ``entries`` defaults to every function of the source module, each
    with representative arguments. Returns a list of
    :class:`PassValidation`, one per pass (plus a final synthetic
    ``"end-to-end"`` entry checking source ≼ x86 directly, witnessing
    transitivity).
    """
    source_module = result.source.module
    if entries is None:
        entries = [
            (name, sample_args(func))
            for name, func in sorted(source_module.functions.items())
        ]
    validations = []
    with obs.span("validate", passes=len(result.stages) - 1):
        for pass_name, src_stage, tgt_stage in result.adjacent_pairs():
            validations.append(
                _validate_one(
                    pass_name, src_stage, tgt_stage, entries,
                    initial_mem, shared, lockstep, rely_limit,
                )
            )
        if include_end_to_end:
            validations.append(
                _validate_one(
                    "end-to-end", result.source, result.target,
                    entries, initial_mem, shared, lockstep, rely_limit,
                )
            )
    return validations


def _validate_one(pass_name, src_stage, tgt_stage, entries, initial_mem,
                  shared, lockstep, rely_limit):
    """Validate one pass inside a span, with real elapsed timing."""
    with obs.span("validate.pass", pass_name=pass_name) as sp:
        start = time.perf_counter()
        report = validate_pair(
            src_stage, tgt_stage, entries, initial_mem, shared,
            lockstep=lockstep, rely_limit=rely_limit,
        )
        elapsed = time.perf_counter() - start
        sp.set(ok=report.ok, segments=report.stats.segments)
    if obs.enabled:
        _record_validation(pass_name, report)
    return PassValidation(pass_name, report, elapsed)


def _record_validation(pass_name, report):
    """Fold one pass's obligation counts into the metrics registry."""
    st = report.stats
    obs.inc("validate.passes")
    obs.inc("validate.obligations.fpmatch", st.fpmatch_checks)
    obs.inc("validate.obligations.scope", st.scope_checks)
    obs.inc("validate.obligations.lg", st.lg_checks)
    obs.inc("validate.obligations.rely_moves", st.rely_moves)
    obs.inc("validate.obligations.messages", st.messages_matched)
    obs.inc("validate.co_exec_steps", st.src_steps + st.tgt_steps)
    obs.inc("validate.segments", st.segments)
    if not report.ok:
        obs.inc("validate.failed_passes")
        obs.event(
            "validate.failure",
            pass_name=pass_name,
            failures=len(report.failures),
        )
