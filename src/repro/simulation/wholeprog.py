"""Whole-program simulation relations, constructed explicitly.

The compose module checks Lems. 6–7 by comparing *behaviour sets*; this
module mechanizes the intermediate object the paper actually builds:
the whole-program downward simulation ``P ≼ P̄`` (and its flip). Given
the explored state graphs of two programs, it computes the largest weak
simulation relation by greatest-fixpoint refinement:

    ``s R t``  iff  for every step ``s --a--> s'`` there is a matching
    weak step ``t ==a==> t'`` (silent/switch steps absorbed) with
    ``s' R t'``, and if ``s`` is terminal (done/abort) then ``t`` can
    weakly reach the same terminal.

``P ≼ P̄`` holds when every initial world of ``P`` is related to some
initial world of ``P̄``. The Flip lemma (step ④ of Fig. 2) is then the
statement that with deterministic target modules the simulation also
holds in the opposite direction — checked by running the same
construction with the programs swapped.

(As a weak simulation without a well-founded index, the construction is
termination-insensitive; the behaviour-set checks in ``compose`` cover
the divergence-sensitive side.)
"""

from collections import deque

from repro.lang.messages import EventMsg
from repro.semantics.explore import ABORT_DST, explore
from repro.semantics.world import GlobalContext

#: Synthetic terminal node ids used inside the product construction.
_DONE = "done"
_ABORT = "abort"


class _Automaton:
    """An explored graph reduced to: silent closure + event edges +
    weakly reachable terminals."""

    def __init__(self, graph):
        self.graph = graph
        n = graph.state_count()
        self.silent_succ = {
            sid: [
                d
                for (lbl, d) in graph.edges.get(sid, [])
                if d != ABORT_DST and not isinstance(lbl, EventMsg)
            ]
            for sid in range(n)
        }
        self._closure = {}
        self._weak_events = {}
        self._weak_terminals = {}

    def closure(self, sid):
        """States weakly (silently) reachable from ``sid``, incl. it."""
        cached = self._closure.get(sid)
        if cached is not None:
            return cached
        seen = {sid}
        queue = deque([sid])
        while queue:
            cur = queue.popleft()
            for nxt in self.silent_succ[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        frozen = frozenset(seen)
        self._closure[sid] = frozen
        return frozen

    def strong_events(self, sid):
        """Direct event edges from ``sid``: list of (event, dst)."""
        return [
            (lbl, d)
            for (lbl, d) in self.graph.edges.get(sid, [])
            if isinstance(lbl, EventMsg) and d != ABORT_DST
        ]

    def weak_events(self, sid):
        """``sid ==e==> t``: event edges reachable through silence,
        with silent closure applied after the event too."""
        cached = self._weak_events.get(sid)
        if cached is not None:
            return cached
        result = {}
        for mid in self.closure(sid):
            for event, dst in self.strong_events(mid):
                result.setdefault(event, set()).update(
                    self.closure(dst)
                )
        self._weak_events[sid] = result
        return result

    def weak_terminals(self, sid):
        """Terminal markers weakly reachable from ``sid``."""
        cached = self._weak_terminals.get(sid)
        if cached is not None:
            return cached
        result = set()
        for mid in self.closure(sid):
            if mid in self.graph.done:
                result.add(_DONE)
            if mid in self.graph.stuck:
                result.add(_ABORT)
            for (lbl, d) in self.graph.edges.get(mid, []):
                if d == ABORT_DST:
                    result.add(_ABORT)
        self._weak_terminals[sid] = result
        return result

    def is_terminal(self, sid):
        if sid in self.graph.done:
            return _DONE
        if sid in self.graph.stuck:
            return _ABORT
        return None


class WholeProgramSimResult:
    """Outcome of the simulation construction."""

    def __init__(self, holds, relation_size, detail=""):
        self.holds = holds
        self.relation_size = relation_size
        self.detail = detail

    def __bool__(self):
        return self.holds

    def __repr__(self):
        return "WholeProgramSimResult(holds={}, |R|={}, {})".format(
            self.holds, self.relation_size, self.detail
        )


def _largest_simulation(src_auto, tgt_auto):
    """Greatest fixpoint of the weak-simulation refinement operator.

    Starts from all pairs consistent on weakly-reachable terminals and
    event alphabets, then removes pairs until stable. Returns the set
    of surviving pairs.
    """
    n_src = src_auto.graph.state_count()
    n_tgt = tgt_auto.graph.state_count()
    relation = set()
    for s in range(n_src):
        s_terms = src_auto.weak_terminals(s)
        s_events = set(src_auto.weak_events(s))
        for t in range(n_tgt):
            if not s_terms <= tgt_auto.weak_terminals(t):
                continue
            if not s_events <= set(tgt_auto.weak_events(t)):
                continue
            relation.add((s, t))

    changed = True
    while changed:
        changed = False
        for (s, t) in list(relation):
            if (s, t) not in relation:
                continue
            ok = _pair_ok(src_auto, tgt_auto, s, t, relation)
            if not ok:
                relation.discard((s, t))
                changed = True
    return relation


def _pair_ok(src_auto, tgt_auto, s, t, relation):
    # Terminal obligations.
    term = src_auto.is_terminal(s)
    if term is not None and term not in tgt_auto.weak_terminals(t):
        return False
    # Silent source steps: the *same* target state must stay related
    # (weak simulation — the target may answer with zero steps), or
    # some silent target successor must be.
    for s2 in src_auto.silent_succ[s]:
        if (s2, t) in relation:
            continue
        if any(
            (s2, t2) in relation for t2 in tgt_auto.closure(t)
        ):
            continue
        return False
    # Event steps.
    tgt_weak = tgt_auto.weak_events(t)
    for event, s2 in src_auto.strong_events(s):
        answers = tgt_weak.get(event, ())
        if not any((s2, t2) in relation for t2 in answers):
            return False
    # Abort edges of the source must be answerable.
    if _ABORT in {
        _ABORT
        for (lbl, d) in src_auto.graph.edges.get(s, [])
        if d == ABORT_DST
    }:
        if _ABORT not in tgt_auto.weak_terminals(t):
            return False
    return True


def check_whole_program_simulation(src_program, tgt_program, semantics,
                                   max_states=200000):
    """Construct ``src ≼ tgt`` on explored graphs under ``semantics``.

    Note the direction: this is the *downward* simulation with the
    roles as in the paper's ``P ≼ P̄`` — every source move answered by
    the target. For the flip, call with the arguments swapped.
    """
    src_graph = explore(
        GlobalContext(src_program), semantics, max_states, strict=True
    )
    tgt_graph = explore(
        GlobalContext(tgt_program), semantics, max_states, strict=True
    )
    src_auto = _Automaton(src_graph)
    tgt_auto = _Automaton(tgt_graph)
    relation = _largest_simulation(src_auto, tgt_auto)

    for s0 in src_graph.initial:
        if not any((s0, t0) in relation for t0 in tgt_graph.initial):
            return WholeProgramSimResult(
                False,
                len(relation),
                "initial world {} unmatched".format(s0),
            )
    return WholeProgramSimResult(True, len(relation), "simulation built")


def check_simulation_and_flip(src_program, tgt_program, semantics,
                              max_states=200000):
    """Steps ⑤ and ④ together: ``src ≼ tgt`` and the flipped
    ``tgt ≼ src`` (valid because our target modules are deterministic).
    Returns ``(down, up)``."""
    down = check_whole_program_simulation(
        src_program, tgt_program, semantics, max_states
    )
    up = check_whole_program_simulation(
        tgt_program, src_program, semantics, max_states
    )
    return down, up
