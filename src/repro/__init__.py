"""CASCompCert reproduction: certified separate compilation for
concurrent programs (Jiang, Liang, Xiao, Zha, Feng — PLDI 2019), as an
executable semantics and translation-validation framework.

Top-level layout:

* :mod:`repro.common` — values, memory, footprints, freelists;
* :mod:`repro.lang` — the abstract concurrent language (Fig. 4) and
  the well-definedness checker (Def. 1);
* :mod:`repro.semantics` — preemptive/non-preemptive global semantics,
  behaviours, refinement, data races (Figs. 7, 9);
* :mod:`repro.langs` — CImp, MiniC (Clight), the IR chain, x86-SC/TSO;
* :mod:`repro.compiler` — the 12-pass mini-CompCert (Fig. 11);
* :mod:`repro.simulation` — the footprint-preserving simulation
  checker and the whole-program lemma checks (Secs. 4–6);
* :mod:`repro.tso` — γ_lock/π_lock, object refinement, the
  strengthened DRF guarantee (Sec. 7.3);
* :mod:`repro.framework` — theorem pipelines and effort reports.
"""

__version__ = "1.0.0"
