"""Global semantics: preemptive & non-preemptive execution, behaviours,
refinement, and data-race detection (Secs. 3.2, 3.3, 5 of the paper).
"""

from repro.semantics.world import Frame, GlobalContext, World
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.explore import (
    Behaviour,
    ExplorationLimit,
    StateGraph,
    behaviours,
    explore,
    program_behaviours,
)
from repro.semantics.refinement import (
    RefinementResult,
    equivalent,
    refines,
    safe,
)
from repro.semantics.race import RaceWitness, drf, find_race, npdrf, predict
from repro.semantics.por import AmpleReducer, default_reduce
from repro.semantics.parallel import (
    default_jobs,
    parallel_explore,
    parallel_find_race,
)
from repro.semantics.witness import (
    CaptureError,
    Schedule,
    ScheduleStep,
    WitnessRecord,
    capture_schedule,
    capture_walk,
    load_witness,
    record_abort,
    record_race,
    save_witness,
)
from repro.semantics.replay import (
    ReplayDivergence,
    ReplayResult,
    minimize_witness,
    replay_schedule,
    replay_witness,
    semantics_for,
)

__all__ = [
    "AmpleReducer",
    "default_reduce",
    "Frame",
    "World",
    "GlobalContext",
    "PreemptiveSemantics",
    "NonPreemptiveSemantics",
    "Behaviour",
    "StateGraph",
    "ExplorationLimit",
    "explore",
    "behaviours",
    "program_behaviours",
    "RefinementResult",
    "refines",
    "equivalent",
    "safe",
    "RaceWitness",
    "predict",
    "find_race",
    "drf",
    "npdrf",
    "default_jobs",
    "parallel_explore",
    "parallel_find_race",
    "CaptureError",
    "Schedule",
    "ScheduleStep",
    "WitnessRecord",
    "capture_schedule",
    "capture_walk",
    "record_race",
    "record_abort",
    "save_witness",
    "load_witness",
    "ReplayDivergence",
    "ReplayResult",
    "replay_schedule",
    "replay_witness",
    "minimize_witness",
    "semantics_for",
]
