"""The preemptive (interleaving) global semantics (Fig. 7).

The scheduler may switch to any live thread at any point where the
current thread is outside an atomic block (the Switch rule); atomic
blocks are the only scheduling constraint. ``S1 ∥ … ∥ Sn`` in the paper.
"""

from repro.semantics.engine import (
    SW,
    GStep,
    SyncPoint,
    thread_successors,
)


class PreemptiveSemantics:
    """Successor function for preemptive execution."""

    name = "preemptive"

    #: The ample-set reducer in :mod:`repro.semantics.por` is sound for
    #: this semantics (free Switch rule, per-step preemption).
    supports_por = True

    def __init__(self, max_atomic_steps=64):
        #: Bound on atomic-block prediction runs (Predict-1, Fig. 9).
        #: Carried on the semantics so race detection and witness
        #: metadata can never disagree on the configured horizon.
        self.max_atomic_steps = max_atomic_steps

    def successors(self, ctx, world, outcomes=None, thread_results=None):
        """All global steps from ``world``: thread steps plus Switch.

        A terminated current thread yields only switch edges; a fully
        terminated world yields no successors (the ``done`` outcome).
        ``outcomes`` optionally carries the precomputed raw outcome
        list of the current thread (see
        :func:`repro.semantics.engine.thread_successors`);
        ``thread_results`` the already-processed global outcomes (the
        POR ample decision computes them, so a refused reduction adds
        only the Switch edges).
        """
        if thread_results is None:
            thread_results = thread_successors(ctx, world, outcomes)
        results = []
        for outcome in thread_results:
            if isinstance(outcome, SyncPoint):
                # The preemptive semantics has no special switch points:
                # the step itself is an ordinary global step, and the
                # free Switch rule below covers rescheduling.
                results.append(
                    GStep(outcome.label, outcome.fp, outcome.world)
                )
            else:
                results.append(outcome)

        # Switch rule: any live thread may be scheduled when the current
        # thread is not inside an atomic block. Self-switches are
        # identities and omitted to keep state graphs small.
        cur = world.cur
        if world.bits[cur] == 0:
            for target, frames in enumerate(world.threads):
                if frames and target != cur:
                    results.append(
                        GStep(SW, None, world.with_current(target))
                    )
        return results

    def initial_worlds(self, ctx):
        return ctx.load()


def successors(ctx, world):
    """Module-level convenience wrapper."""
    return PreemptiveSemantics().successors(ctx, world)
