"""The preemptive (interleaving) global semantics (Fig. 7).

The scheduler may switch to any live thread at any point where the
current thread is outside an atomic block (the Switch rule); atomic
blocks are the only scheduling constraint. ``S1 ∥ … ∥ Sn`` in the paper.
"""

from repro.semantics.engine import (
    SW,
    GStep,
    SyncPoint,
    thread_successors,
)


class PreemptiveSemantics:
    """Successor function for preemptive execution."""

    name = "preemptive"

    def successors(self, ctx, world):
        """All global steps from ``world``: thread steps plus Switch.

        A terminated current thread yields only switch edges; a fully
        terminated world yields no successors (the ``done`` outcome).
        """
        results = []
        for outcome in thread_successors(ctx, world):
            if isinstance(outcome, SyncPoint):
                # The preemptive semantics has no special switch points:
                # the step itself is an ordinary global step, and the
                # free Switch rule below covers rescheduling.
                results.append(
                    GStep(outcome.label, outcome.fp, outcome.world)
                )
            else:
                results.append(outcome)

        # Switch rule: any live thread may be scheduled when the current
        # thread is not inside an atomic block. Self-switches are
        # identities and omitted to keep state graphs small.
        cur = world.cur
        if world.bits[cur] == 0:
            for target, frames in enumerate(world.threads):
                if frames and target != cur:
                    results.append(
                        GStep(SW, None, world.with_current(target))
                    )
        return results

    def initial_worlds(self, ctx):
        return ctx.load()


def successors(ctx, world):
    """Module-level convenience wrapper."""
    return PreemptiveSemantics().successors(ctx, world)
