"""Witness capture: replayable schedules for exploration verdicts.

A verdict alone ("racy", "aborts") is not auditable: nothing ties it to
an execution that can be re-run, shrunk, or explained. This module
makes every verdict carry a **schedule** — the sequence of scheduling
choices from an initial world to the interesting world — serialized as
a versioned JSON artifact that :mod:`repro.semantics.replay` re-executes
deterministically and ``repro inspect`` renders as a per-thread
timeline.

Capture is *post-hoc*: both exploration loops already record every
expanded world's edges in successor-list order (see
:func:`repro.semantics.explore.explore`), so the discovery path to any
state is a path of edge indices through ``graph.edges`` — extracted
here by BFS, then re-walked once under the plain (unreduced) semantics
to annotate each step with the acting thread, label kind and footprint.
The re-walk doubles as a soundness cross-check: a witness found under
partial-order reduction must reproduce state-for-state under the full
preemptive semantics (ample edges are a prefix of the full successor
list — :meth:`repro.semantics.por.AmpleReducer.decide`), and a
:class:`CaptureError` here means that prefix property broke. The hot
exploration loops themselves are untouched — capture costs one
path-length walk per witness, preserving the <1% disabled-path
contract of the observability layer.

Schedule steps record ``(index, tid, to, kind, detail, rs, ws)``:
``index`` is the successor-list position (the ground truth replay
follows), the rest is checkable redundancy — the acting thread before
and the scheduled thread after the step, the label kind
(``tau``/``sw``/``event``/``abort``), the event payload or abort
reason, and the step footprint as sorted address tuples.
"""

import json
from collections import deque

from repro import obs
from repro.semantics.engine import GAbort, label_kind
from repro.semantics.explore import ABORT_DST

#: Version tag of the witness JSON artifact (bump on layout changes).
WITNESS_SCHEMA_VERSION = 1


class CaptureError(Exception):
    """A schedule could not be extracted or re-walked from a graph."""


class ScheduleStep:
    """One scheduling choice along a recorded execution.

    ``index`` — position in the successor list of the world the step
    was taken from; ``tid``/``to`` — the current thread before/after
    the step; ``kind`` — the label classification
    (:func:`repro.semantics.engine.label_kind`); ``detail`` — the event
    ``(kind, value-str)`` pair or the abort reason; ``rs``/``ws`` — the
    step footprint as sorted address tuples (``None`` for pure
    scheduler edges, which have no footprint).
    """

    __slots__ = ("index", "tid", "to", "kind", "detail", "rs", "ws")

    def __init__(self, index, tid, to, kind, detail=None, rs=None,
                 ws=None):
        self.index = index
        self.tid = tid
        self.to = to
        self.kind = kind
        self.detail = detail
        self.rs = None if rs is None else tuple(rs)
        self.ws = None if ws is None else tuple(ws)

    def __eq__(self, other):
        return isinstance(other, ScheduleStep) and self.as_dict() == \
            other.as_dict()

    def __repr__(self):
        return "ScheduleStep(i={}, t{}→t{}, {})".format(
            self.index, self.tid, self.to, self.kind
        )

    def as_dict(self):
        rec = {"i": self.index, "tid": self.tid, "to": self.to,
               "k": self.kind}
        if self.detail is not None:
            rec["d"] = list(self.detail) if isinstance(
                self.detail, tuple) else self.detail
        if self.rs is not None:
            rec["rs"] = list(self.rs)
        if self.ws is not None:
            rec["ws"] = list(self.ws)
        return rec

    @classmethod
    def from_dict(cls, rec):
        detail = rec.get("d")
        if isinstance(detail, list):
            detail = tuple(detail)
        return cls(
            rec["i"], rec["tid"], rec["to"], rec["k"], detail,
            rec.get("rs"), rec.get("ws"),
        )


class Schedule:
    """A replayable execution prefix: initial-world choice plus steps.

    ``init`` indexes ``semantics.initial_worlds`` (the Load rule yields
    one world per initial thread choice); ``semantics`` is the global
    semantics' ``name``; ``por`` records whether the schedule was
    discovered under partial-order reduction (informational — replay is
    always performed under the full semantics).
    """

    __slots__ = ("init", "steps", "semantics", "por")

    def __init__(self, init, steps, semantics, por=False):
        self.init = init
        self.steps = tuple(steps)
        self.semantics = semantics
        self.por = bool(por)

    def __len__(self):
        return len(self.steps)

    def __eq__(self, other):
        return (
            isinstance(other, Schedule)
            and self.init == other.init
            and self.steps == other.steps
            and self.semantics == other.semantics
        )

    def __repr__(self):
        return "Schedule({} step(s), init={}, {})".format(
            len(self.steps), self.init, self.semantics
        )

    def as_dict(self):
        return {
            "init": self.init,
            "semantics": self.semantics,
            "por": self.por,
            "steps": [st.as_dict() for st in self.steps],
        }

    @classmethod
    def from_dict(cls, rec):
        return cls(
            rec["init"],
            [ScheduleStep.from_dict(s) for s in rec["steps"]],
            rec["semantics"],
            rec.get("por", False),
        )


# ----- path extraction ------------------------------------------------------


def graph_path(graph, target_sid):
    """A shortest edge-index path from an initial state to ``target_sid``.

    BFS over the recorded edges; returns ``(init_index, hops)`` where
    ``init_index`` indexes ``graph.initial`` and each hop is
    ``(sid, edge_index, dst)``. Works on halted (prefix) graphs: every
    reachable state was added as a successor of an expanded state, so
    its discovery edge is recorded even when the state itself never got
    expanded.
    """
    parents = {}
    seen = set(graph.initial)
    queue = deque(graph.initial)
    found = target_sid in seen
    while queue and not found:
        sid = queue.popleft()
        for i, (_label, dst) in enumerate(graph.edges.get(sid, ())):
            if dst == ABORT_DST or dst in seen:
                continue
            parents[dst] = (sid, i)
            if dst == target_sid:
                found = True
                break
            seen.add(dst)
            queue.append(dst)
    if not found:
        raise CaptureError(
            "state {} unreachable from the initial states in the "
            "recorded graph".format(target_sid)
        )
    hops = []
    sid = target_sid
    while sid not in graph.initial:
        parent, i = parents[sid]
        hops.append((parent, i, sid))
        sid = parent
    hops.reverse()
    return graph.initial.index(sid), hops


def abort_target(graph):
    """The first recorded abort edge ``(sid, edge_index)``, or ``None``."""
    for sid in range(graph.state_count()):
        for i, (_label, dst) in enumerate(graph.edges.get(sid, ())):
            if dst == ABORT_DST:
                return sid, i
    return None


# ----- capture --------------------------------------------------------------


def _make_step(index, world, out):
    """Annotate one taken global step as a :class:`ScheduleStep`."""
    kind = label_kind(out.label)
    detail = None
    if kind == "event":
        detail = (out.label.kind, str(out.label.value))
    fp = out.fp
    if fp is None:
        rs = ws = None
    else:
        rs = sorted(fp.rs)
        ws = sorted(fp.ws)
    return ScheduleStep(
        index, world.cur, out.world.cur, kind, detail, rs, ws
    )


def capture_schedule(ctx, semantics, graph, target_sid, por=False,
                     abort_index=None):
    """Extract and annotate the schedule reaching ``target_sid``.

    Re-walks the extracted path under the plain semantics, verifying
    every step lands on the world the explorer recorded — for a graph
    built under partial-order reduction this is the cross-check that
    the reduced discovery path replays identically under the full
    semantics. ``abort_index`` optionally appends the aborting choice
    at the target world, producing a schedule that ends in ``abort``.
    """
    init_idx, hops = graph_path(graph, target_sid)
    world = semantics.initial_worlds(ctx)[init_idx]
    steps = []
    for n, (_sid, i, dst) in enumerate(hops):
        outs = semantics.successors(ctx, world)
        if i >= len(outs):
            raise CaptureError(
                "step {}: recorded successor index {} out of range "
                "({} successors under the full semantics)".format(
                    n, i, len(outs)
                )
            )
        out = outs[i]
        if isinstance(out, GAbort):
            raise CaptureError(
                "step {}: interior edge replays as an abort".format(n)
            )
        if out.world != graph.states[dst]:
            raise CaptureError(
                "step {}: full-semantics walk diverges from the "
                "explored graph (POR prefix property violated?)".format(
                    n
                )
            )
        steps.append(_make_step(i, world, out))
        world = out.world
    if abort_index is not None:
        outs = semantics.successors(ctx, world)
        if abort_index >= len(outs) or not isinstance(
            outs[abort_index], GAbort
        ):
            raise CaptureError(
                "recorded abort edge {} is not an abort under the "
                "full semantics".format(abort_index)
            )
        steps.append(
            ScheduleStep(
                abort_index, world.cur, world.cur, "abort",
                outs[abort_index].reason,
            )
        )
    schedule = Schedule(init_idx, steps, semantics.name, por)
    if obs.enabled:
        obs.inc("witness.captured")
        obs.inc("witness.schedule_steps", len(steps))
        obs.event(
            "witness.captured", steps=len(steps),
            semantics=semantics.name, por=por,
        )
    return schedule


def capture_abort_schedule(ctx, semantics, graph, por=False):
    """The schedule to the first recorded abort edge, or ``None``."""
    tgt = abort_target(graph)
    if tgt is None:
        return None
    sid, i = tgt
    return capture_schedule(
        ctx, semantics, graph, sid, por=por, abort_index=i
    )


def capture_walk(ctx, semantics, picks, init=0):
    """Record a schedule by walking a sequence of successor choices.

    Each pick is taken modulo the number of enabled successors; the
    walk stops early at a terminated world, an abort, or when picks run
    out. Returns ``(schedule, final_world)`` — the random-schedule
    generator the replay-determinism tests are built on.
    """
    world = semantics.initial_worlds(ctx)[init]
    steps = []
    for pick in picks:
        if world.is_done():
            break
        outs = semantics.successors(ctx, world)
        if not outs:
            break
        i = pick % len(outs)
        out = outs[i]
        if isinstance(out, GAbort):
            steps.append(
                ScheduleStep(i, world.cur, world.cur, "abort",
                             out.reason)
            )
            break
        steps.append(_make_step(i, world, out))
        world = out.world
    return Schedule(init, steps, semantics.name, False), world


# ----- the witness artifact -------------------------------------------------


class WitnessRecord:
    """A self-contained, serialisable verdict artifact.

    ``verdict`` is ``"race"`` or ``"abort"``; ``race`` (for races) maps
    the conflicting prediction pair to plain data
    (``tid1``/``rs1``/``ws1``/``bit1`` and the ``2`` counterparts);
    ``program`` optionally records how to rebuild the program (thread
    entries, lock/optimize flags) so ``repro replay`` needs no repeated
    flags; ``meta`` carries capture parameters (``max_atomic_steps``).
    """

    __slots__ = ("verdict", "schedule", "race", "program", "minimized",
                 "meta")

    def __init__(self, verdict, schedule, race=None, program=None,
                 minimized=False, meta=None):
        self.verdict = verdict
        self.schedule = schedule
        self.race = race
        self.program = program or {}
        self.minimized = bool(minimized)
        self.meta = meta or {}

    def __repr__(self):
        return "WitnessRecord({}, {} step(s){})".format(
            self.verdict, len(self.schedule),
            ", minimized" if self.minimized else "",
        )

    def as_dict(self):
        rec = {
            "type": "witness",
            "version": WITNESS_SCHEMA_VERSION,
            "verdict": self.verdict,
            "minimized": self.minimized,
            "schedule": self.schedule.as_dict(),
        }
        if self.race is not None:
            rec["race"] = dict(self.race)
        if self.program:
            rec["program"] = dict(self.program)
        if self.meta:
            rec["meta"] = dict(self.meta)
        return rec

    @classmethod
    def from_dict(cls, rec):
        if rec.get("type") != "witness":
            raise CaptureError(
                "not a witness artifact (type={!r})".format(
                    rec.get("type")
                )
            )
        version = rec.get("version")
        if version != WITNESS_SCHEMA_VERSION:
            raise CaptureError(
                "unsupported witness schema version {!r} "
                "(expected {})".format(version, WITNESS_SCHEMA_VERSION)
            )
        return cls(
            rec["verdict"],
            Schedule.from_dict(rec["schedule"]),
            rec.get("race"),
            rec.get("program"),
            rec.get("minimized", False),
            rec.get("meta"),
        )


def record_race(witness, program=None, minimized=False, meta=None):
    """A :class:`WitnessRecord` for a schedule-carrying ``RaceWitness``."""
    if witness.schedule is None:
        raise CaptureError(
            "RaceWitness carries no schedule (find_race(capture=False)?)"
        )
    race = {
        "tid1": witness.tid1,
        "rs1": sorted(witness.fp1.rs),
        "ws1": sorted(witness.fp1.ws),
        "bit1": witness.bit1,
        "tid2": witness.tid2,
        "rs2": sorted(witness.fp2.rs),
        "ws2": sorted(witness.fp2.ws),
        "bit2": witness.bit2,
    }
    return WitnessRecord(
        "race", witness.schedule, race, program, minimized, meta
    )


def record_abort(schedule, program=None, meta=None):
    """A :class:`WitnessRecord` for a schedule ending in ``abort``."""
    if not schedule.steps or schedule.steps[-1].kind != "abort":
        raise CaptureError("schedule does not end in an abort step")
    return WitnessRecord("abort", schedule, None, program, False, meta)


def save_witness(path_or_file, record):
    """Write a witness artifact as (indented, stable-key) JSON."""
    data = json.dumps(record.as_dict(), indent=2, sort_keys=True)
    if hasattr(path_or_file, "write"):
        path_or_file.write(data + "\n")
    else:
        with open(path_or_file, "w") as handle:
            handle.write(data + "\n")


def load_witness(path_or_file):
    """Read a witness artifact back into a :class:`WitnessRecord`."""
    if hasattr(path_or_file, "read"):
        rec = json.load(path_or_file)
    else:
        with open(path_or_file) as handle:
            rec = json.load(handle)
    return WitnessRecord.from_dict(rec)
