"""Footprint-directed partial-order reduction (ample sets + sleep sets).

The preemptive semantics lets the scheduler switch threads at *every*
step outside an atomic block, so the explored world graph grows
exponentially in thread count even though most interleavings only
permute steps that commute. The paper's footprints are an executable
independence relation: by the locality/forward lemmas behind Def. 1,
two silent steps of different threads with non-conflicting footprints
commute — executing them in either order reaches the same world.

This module turns that into a sound *ample set* construction for
:func:`repro.semantics.explore.explore`:

* At a world ``W`` whose current thread's next steps are all **private**
  — silent ``τ`` steps whose footprints lie entirely inside the thread's
  own freelist address space (or are empty) — the singleton ample set
  ``{cur}`` is chosen: only the current thread is expanded and the
  Switch edges to other threads are pruned. Privacy is a *stable*
  strengthening of one-step footprint disjointness: a private footprint
  can never conflict with any step any other thread takes now **or
  later** (freelists of distinct threads are disjoint by construction,
  Sec. 2.3), which is exactly the unbounded-future independence that
  the ample-set condition C1 demands. One-step disjointness alone is
  not enough: a thread whose *second* step conflicts with the pruned
  thread's pending write would lose interleavings (see
  ``tests/semantics/test_por.py`` for the counterexample).

* Reduction is refused conservatively whenever any candidate outcome is
  not a plain silent :class:`~repro.lang.steps.Step`: observable events,
  ``EntAtom``/``ExtAtom``, spawns, calls/returns and aborts all force a
  full expansion (C2, visibility), as do stuck or terminated current
  threads.

* The **cycle proviso** (C3) is applied by the explorer's DFS: a reduced
  expansion whose successor closes a cycle back into the current search
  stack is re-expanded fully, so a thread spinning in a private loop
  cannot starve the others (the classical "ignoring problem") and
  ``silent_div`` detection stays exact.

* **Sleep sets**: threads whose Switch edge was pruned at a world are
  *asleep*; along a chain of consecutive reduced expansions they stay
  asleep without being re-examined. ``sleep_hits`` counts these
  kept-asleep decisions — the redundant commutations that were never
  even considered again.

The reducer is deliberately unaware of the non-preemptive semantics:
its switch points (atomic boundaries, events, termination) are exactly
the sync points NPDRF's region predictions quantify over, so pruning
them would change what :func:`repro.semantics.race.predict` must cover.
Non-preemptive exploration is already "reduced" in that sense and runs
unmodified (``explore`` falls back to the full expansion).
"""

import os

from repro.common.freelist import LOCAL_BASE, MAX_DEPTH, SLOT_SPACE
from repro.lang import closure as _closure
from repro.semantics.engine import GStep, thread_expansion

#: Width of one thread's private address space: every activation
#: freelist of thread ``t`` lies in
#: ``[LOCAL_BASE + t·THREAD_SPAN, LOCAL_BASE + (t+1)·THREAD_SPAN)``
#: (see :meth:`repro.common.freelist.FreeList.for_thread`).
THREAD_SPAN = MAX_DEPTH * SLOT_SPACE

_OFF_VALUES = frozenset({"0", "false", "off", "no", ""})


def default_reduce(environ=None):
    """The ``REPRO_POR`` default: reduction is on unless switched off.

    POR defaults on only for the whole-program property checks
    (``drf``/``npdrf``/``program_behaviours``) whose POR-on/POR-off
    agreement the cross-validation suite pins down; ``explore`` itself
    keeps ``reduce=False`` so graph consumers see the full graph unless
    they opt in.
    """
    env = os.environ if environ is None else environ
    value = env.get("REPRO_POR")
    if value is None:
        return True
    return value.strip().lower() not in _OFF_VALUES


def thread_outcomes(ctx, world, tid):
    """Raw one-step outcomes of ``tid``'s top activation.

    Returns ``(decl, frame, outcomes)`` or ``None`` for a terminated
    thread. This is the one-step prediction both the ample decision and
    :func:`repro.semantics.race.predict` are built from.
    """
    frame = world.top_frame(tid)
    if frame is None:
        return None
    decl = ctx.module(frame.mod_idx)
    outs = _closure.step_outcomes(decl, frame.core, world.mem, frame.flist)
    return decl, frame, outs


class AmpleReducer:
    """Per-exploration ample-set oracle for the preemptive semantics.

    Holds the privacy memo table (footprints are hash-consed, so the
    table stays tiny) and the plain reduction counters the explorer
    flushes into ``obs`` when metrics are enabled.
    """

    __slots__ = (
        "_private_fp",
        "ample_worlds",
        "full_expansions",
        "proviso_expansions",
        "sleep_hits",
        "steps_avoided",
    )

    def __init__(self):
        self._private_fp = {}
        self.ample_worlds = 0
        self.full_expansions = 0
        self.proviso_expansions = 0
        self.sleep_hits = 0
        self.steps_avoided = 0

    def snapshot(self):
        """The counters as a plain dict (heartbeat / status payloads)."""
        return {
            "ample_worlds": self.ample_worlds,
            "full_expansions": self.full_expansions,
            "proviso_expansions": self.proviso_expansions,
            "sleep_hits": self.sleep_hits,
            "steps_avoided": self.steps_avoided,
        }

    def footprint_private(self, fp, tid):
        """True iff ``fp`` touches only thread ``tid``'s freelist space."""
        if fp.is_empty():
            return True
        key = (fp, tid)
        cached = self._private_fp.get(key)
        if cached is None:
            lo = LOCAL_BASE + tid * THREAD_SPAN
            hi = lo + THREAD_SPAN
            cached = all(lo <= a < hi for a in fp.rs) and all(
                lo <= a < hi for a in fp.ws
            )
            self._private_fp[key] = cached
        return cached

    def decide(self, ctx, world):
        """The ample decision at ``world``.

        Returns ``(outcomes, results, ample)``. ``outcomes`` is the
        current thread's raw local outcome list (for sharing with fused
        race prediction), ``results`` the engine-processed global
        outcomes (:class:`~repro.semantics.engine.GStep` etc.), both
        ``None`` when not computed (terminated thread or atomic
        section). ``ample`` is True iff the singleton ample set
        ``{cur}`` is sound here: every result is a *private* silent
        global step — label ``None`` (τ, internal call/return — never
        an event, atomic boundary, spawn, termination or abort) with a
        footprint inside the thread's own address space. Classifying
        the engine-processed results (rather than raw messages) keeps
        this in lock-step with the engine's Fig. 7 rules and admits
        silent cross-module calls/returns, whose only effects are the
        thread's own activation stack and its private freelists.

        The ample ``results`` are exactly the thread's global steps in
        ``thread_successors`` order — i.e. a *prefix* of what the full
        ``semantics.successors`` list would be (the pruned Switch edges
        are appended after the thread steps). Witness capture and
        replay (:mod:`repro.semantics.witness`) rely on this: an
        edge-index path recorded through a reduced expansion replays
        verbatim under the full semantics. Sleep sets are accounting
        only (``sleep_hits``) and never drop additional edges, so they
        cannot corrupt recorded schedules.
        """
        cur = world.cur
        if world.bits[cur] != 0:
            # Inside an atomic block the semantics emits no switches;
            # there is nothing to prune and EntAtom/ExtAtom handling
            # must stay with the engine.
            return None, None, False
        outs, results = thread_expansion(ctx, world)
        if outs is None:
            return None, None, False
        if not outs:
            # Locally stuck: surface through the full path.
            return outs, [], False
        private = self.footprint_private
        for res in results:
            if (
                not isinstance(res, GStep)
                or res.label is not None
                or not private(res.fp, cur)
            ):
                return outs, results, False
        return outs, results, True
