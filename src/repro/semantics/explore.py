"""Bounded exploration of global state spaces, and event-trace behaviours.

The paper's whole-program properties (refinement ``⊑``, equivalence
``≈``, DRF) quantify over all executions. For the finite-state programs
of our suite we *compute* the execution space:

1. :func:`explore` builds the reachable world graph under a given global
   semantics (preemptive or non-preemptive), with edges labelled by
   events / silent / switch;
2. :func:`behaviours` extracts the set of observable behaviours: event
   traces ending in ``done`` (all threads terminated), ``abort``
   (undefined behaviour reached), ``silent_div`` (an infinite silent
   execution that keeps making thread steps exists), or ``cut`` (the
   exploration or trace-length bound was hit — comparisons treat any
   ``cut`` as inconclusive rather than silently passing).

With ``reduce=True``, preemptive exploration applies the
footprint-directed partial-order reduction of
:mod:`repro.semantics.por`: worlds whose current thread's next steps
are private silent steps expand only that thread, with the DFS cycle
proviso forcing full expansions on cycles so divergence detection and
behaviour extraction stay exact. ``explore`` keeps ``reduce=False`` as
its default so existing graph consumers always see the full graph; the
whole-program property entry points (:func:`program_behaviours`,
``drf``/``npdrf``) default to the ``REPRO_POR`` environment setting.

Pure scheduler livelock (a cycle of switch edges with no thread
progress) exists in every multi-threaded world under both semantics; it
is not reported as divergence, so that ``silent_div`` marks *program*
divergence (e.g. a spin loop that can spin forever).
"""

from collections import deque

from repro import obs
from repro.common import intern
from repro.common.memory import STATS as MEM_STATS
from repro.lang import closure as _closure
from repro.lang.messages import EventMsg
from repro.obs import heap as _heap
from repro.obs import status as _status
from repro.semantics.engine import SW, GAbort
from repro.semantics.por import AmpleReducer, default_reduce

#: States expanded between heartbeat clock checks. The heartbeat's own
#: time gate decides whether to write; the stride just keeps the
#: monotonic-clock read off the per-state path (one int decrement and
#: compare per state when a writer is active, nothing when not).
_HB_STRIDE = 64


class ExplorationLimit(Exception):
    """Raised when a state-space bound is exceeded and strict=True."""


class Behaviour:
    """One observable behaviour: an event trace plus how it ends."""

    __slots__ = ("events", "end")

    DONE = "done"
    ABORT = "abort"
    SILENT_DIV = "silent_div"
    CUT = "cut"

    def __init__(self, events, end):
        object.__setattr__(self, "events", tuple(events))
        object.__setattr__(self, "end", end)

    def __setattr__(self, name, value):
        raise AttributeError("Behaviour is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Behaviour)
            and self.events == other.events
            and self.end == other.end
        )

    def __hash__(self):
        return hash((self.events, self.end))

    def __repr__(self):
        evs = ",".join(
            "{}:{!r}".format(e.kind, e.value) for e in self.events
        )
        return "Behaviour([{}], {})".format(evs, self.end)


class StateGraph:
    """The explored world graph.

    ``states``: world list (ids are indices); ``edges[sid]``: list of
    ``(label, dst)`` with ``dst = -1`` for abort; ``done``: ids of
    fully-terminated worlds; ``stuck``: ids of non-terminated worlds
    with no successors (a semantics bug surfaced loudly);
    ``truncated``: ids whose successors were cut off by the state bound;
    ``halted``: an observer stopped the exploration early (the graph is
    a prefix, not the full reachable set), with ``halted_sid`` the id of
    the world the observer halted at — the witness-capture machinery's
    entry point into the graph (:mod:`repro.semantics.witness`).
    """

    def __init__(self):
        self.states = []
        self.ids = {}
        self.edges = {}
        self.initial = []
        self.done = set()
        self.stuck = set()
        self.truncated = set()
        self.halted = False
        self.halted_sid = None

    def state_count(self):
        return len(self.states)

    def add(self, world):
        """Intern a world known to be absent; the single append path.

        Both exploration loops go through this method (bound to a local
        in the hot loops), so the id table and state list can never
        drift apart between expansion sites.
        """
        sid = len(self.states)
        self.states.append(world)
        self.ids[world] = sid
        return sid

    def intern(self, world):
        sid = self.ids.get(world)
        if sid is None:
            sid = self.add(world)
        return sid


ABORT_DST = -1


def explore(ctx, semantics, max_states=50000, strict=False, reduce=False,
            observer=None, jobs=None):
    """Build the reachable :class:`StateGraph` under ``semantics``.

    ``reduce=True`` enables partial-order reduction when the semantics
    supports it (currently the preemptive one); otherwise the full
    graph is built. ``observer``, if given, is called as
    ``observer(world, outcomes)`` for every expanded non-terminated
    world — ``outcomes`` is the current thread's raw local outcome list
    when the expansion already computed it (the reduced path), else
    ``None``. A truthy return halts the exploration (``graph.halted``,
    with the halting world's id in ``graph.halted_sid``) — the hook the
    on-the-fly race detector uses to stop at the first witness without
    retaining the rest of the state space.

    Both loops append each expanded world's edges in successor-list
    order, which is what makes the halted graph *replayable*: a path of
    edge indices through ``graph.edges`` is a schedule the plain
    semantics re-executes deterministically (under reduction, ample
    edges are a prefix of the full successor list — see
    :meth:`repro.semantics.por.AmpleReducer.decide`), so witness
    capture (:mod:`repro.semantics.witness`) needs no per-step hook on
    this hot path.

    ``jobs > 1`` dispatches to the process-parallel explorer
    (:mod:`repro.semantics.parallel`), which produces an identical
    graph; local ``observer`` closures cannot cross the process
    boundary, so the combination is rejected — fused race detection
    has its own parallel entry point
    (:func:`repro.semantics.race.find_race` with ``jobs``).
    """
    if jobs is not None and jobs > 1:
        from repro.semantics import parallel

        if parallel.available():
            if observer is not None:
                raise ValueError(
                    "parallel exploration cannot run a local observer "
                    "closure; use find_race(jobs=...) for fused race "
                    "detection"
                )
            return parallel.parallel_explore(
                ctx, semantics, max_states=max_states, strict=strict,
                reduce=reduce, jobs=jobs,
            )
    use_por = bool(reduce) and getattr(semantics, "supports_por", False)
    # Hoisted observability flag: the loops below are the system's
    # hottest path, so the disabled cost is one truthiness test per
    # expanded state.
    track = obs.enabled
    hb = _status.writer
    if hb is not None:
        hb.update(
            phase="explore",
            semantics=type(semantics).__name__,
            por=use_por,
            budget=max_states,
        )
    ctx.staging = _closure.enabled()
    if ctx.staging:
        # Stage every module up front, in its own span: compile time is
        # a phase of its own, never booked against expansion.
        with obs.span("closure_compile"):
            _closure.prime(ctx)
    with obs.span(
        "explore",
        semantics=type(semantics).__name__,
        max_states=max_states,
        por=use_por,
    ) as sp:
        if track:
            tot0 = intern.totals()
            stats0 = intern.stats()
            reused0 = MEM_STATS.nodes_reused
        if use_por:
            graph, hwm, reducer = _explore_reduced(
                ctx, semantics, max_states, strict, observer
            )
        else:
            reducer = None
            graph, hwm = _explore_full(
                ctx, semantics, max_states, strict, observer
            )

        if graph.truncated:
            # strict=True raises before getting here, so this is the
            # silent-truncation case: make it diagnosable.
            obs.inc("explore.truncated_states", len(graph.truncated))
            obs.warn(
                "exploration truncated at {} states ({} frontier "
                "state(s) cut); behaviours may include 'cut'".format(
                    max_states, len(graph.truncated)
                ),
                max_states=max_states,
                truncated=len(graph.truncated),
            )
        if track:
            # Per-run deltas of the hot-path machinery's plain counters
            # (the counters themselves never touch the obs layer).
            tot1 = intern.totals()
            obs.inc("intern.hits", tot1.hits - tot0.hits)
            obs.inc("intern.misses", tot1.misses - tot0.misses)
            obs.inc("intern.clears", tot1.clears - tot0.clears)
            _record_intern_table_metrics(stats0, intern.stats())
            obs.inc(
                "memory.nodes_reused", MEM_STATS.nodes_reused - reused0
            )
            _record_explore_metrics(graph, hwm, sp)
            if reducer is not None:
                obs.inc("por.ample_worlds", reducer.ample_worlds)
                obs.inc("por.full_expansions", reducer.full_expansions)
                obs.inc(
                    "por.proviso_expansions", reducer.proviso_expansions
                )
                obs.inc("por.sleep_hits", reducer.sleep_hits)
                obs.inc("por.steps_avoided", reducer.steps_avoided)
                sp.set(
                    ample_worlds=reducer.ample_worlds,
                    full_expansions=reducer.full_expansions,
                    steps_avoided=reducer.steps_avoided,
                )
    if hb is not None:
        # Forced final beat: even sub-second runs leave a status file
        # whose state count matches the finished graph.
        if reducer is not None:
            hb.update(por_counters=reducer.snapshot())
        hb.force(states=graph.state_count(), frontier=0)
    if _heap.enabled():
        # Post-run heap census (own span, outside "explore" so the
        # states/s denominator never includes census time).
        _heap.collect(graph)
    return graph


def _explore_full(ctx, semantics, max_states, strict, observer):
    """The classical BFS over every interleaving (no reduction)."""
    graph = StateGraph()
    queue = deque()
    for world in semantics.initial_worlds(ctx):
        sid = graph.intern(world)
        graph.initial.append(sid)
        queue.append(sid)
    frontier_hwm = len(queue)

    # Locals hoisted out of the loop: every line below runs once per
    # dequeued state or per candidate edge.
    states = graph.states
    ids = graph.ids
    add = graph.add
    all_edges = graph.edges
    successors = semantics.successors
    track = obs.enabled
    hb = _status.writer
    # -1 sentinel decrements forever without hitting 0 when no writer
    # is configured: the disabled cost is one int op per state.
    hb_left = _HB_STRIDE if hb is not None else -1
    while queue:
        if track and len(queue) > frontier_hwm:
            frontier_hwm = len(queue)
        hb_left -= 1
        if hb_left == 0:
            hb_left = _HB_STRIDE
            hb.beat(states=len(states), frontier=len(queue))
        sid = queue.popleft()
        world = states[sid]
        if world.is_done():
            graph.done.add(sid)
            all_edges[sid] = []
            continue
        if observer is not None and observer(world, None):
            graph.halted = True
            graph.halted_sid = sid
            break
        outs = successors(ctx, world)
        if not outs:
            graph.stuck.add(sid)
            all_edges[sid] = []
            continue
        edges = []
        for out in outs:
            if isinstance(out, GAbort):
                edges.append((Behaviour.ABORT, ABORT_DST))
                continue
            dst = ids.get(out.world)
            if dst is None:
                if len(states) >= max_states:
                    if strict:
                        raise ExplorationLimit(
                            "state bound {} exceeded".format(max_states)
                        )
                    graph.truncated.add(sid)
                    continue
                dst = add(out.world)
                queue.append(dst)
            edges.append((out.label, dst))
        all_edges[sid] = edges
    return graph, frontier_hwm


_NO_SLEEP = frozenset()


def _explore_reduced(ctx, semantics, max_states, strict, observer):
    """DFS with footprint-directed ample sets and the cycle proviso.

    DFS (not BFS) because the standard proviso implementation needs the
    current search stack: a reduced expansion whose successor closes a
    cycle back into the stack is redone fully, which breaks the
    "ignoring problem" (a thread spinning through private states would
    otherwise never yield to the others) and keeps ``silent_div``
    detection and behaviour extraction exact on the reduced graph.
    """
    graph = StateGraph()
    reducer = AmpleReducer()
    for world in semantics.initial_worlds(ctx):
        graph.initial.append(graph.intern(world))

    states = graph.states
    ids = graph.ids
    add = graph.add
    all_edges = graph.edges
    successors = semantics.successors
    decide = reducer.decide

    on_stack = set()
    # Stack entries: [sid, successor-iterator | None, sleep set the
    # expansion inherits from its DFS parent].
    stack = []
    stack_hwm = 0
    halted = False
    hb = _status.writer
    hb_left = _HB_STRIDE if hb is not None else -1

    for root in graph.initial:
        if halted:
            break
        if root in all_edges:
            continue
        stack.append([root, None, _NO_SLEEP])
        while stack:
            hb_left -= 1
            if hb_left == 0:
                hb_left = _HB_STRIDE
                if hb.due():
                    # The POR counter dict is only built when a write
                    # is actually due.
                    hb.update(por_counters=reducer.snapshot())
                    hb.beat(states=len(states), frontier=len(stack))
            entry = stack[-1]
            sid = entry[0]
            it = entry[1]
            if it is not None:
                dst = next(it, None)
                if dst is None:
                    on_stack.discard(sid)
                    stack.pop()
                elif dst not in all_edges:
                    stack.append([dst, None, entry[2]])
                    if len(stack) > stack_hwm:
                        stack_hwm = len(stack)
                continue
            if sid in all_edges:
                # Reached again through a sibling before being visited.
                stack.pop()
                continue
            world = states[sid]
            if world.is_done():
                graph.done.add(sid)
                all_edges[sid] = []
                stack.pop()
                continue
            on_stack.add(sid)
            outs, results, ample = decide(ctx, world)
            if observer is not None and observer(world, outs):
                graph.halted = True
                graph.halted_sid = sid
                halted = True
                break
            edges = []
            children = []
            child_sleep = _NO_SLEEP
            if ample:
                for res in results:
                    dst = ids.get(res.world)
                    if dst is None:
                        if len(states) >= max_states:
                            if strict:
                                raise ExplorationLimit(
                                    "state bound {} exceeded".format(
                                        max_states
                                    )
                                )
                            graph.truncated.add(sid)
                            continue
                        dst = add(res.world)
                    elif dst in on_stack:
                        # Cycle proviso (C3): this reduction would close
                        # a cycle of reduced states — expand fully.
                        ample = False
                        reducer.proviso_expansions += 1
                        break
                    edges.append((None, dst))
                    children.append(dst)
                if ample:
                    live = world.live_threads()
                    pruned = len(live) - 1
                    if pruned > 0:
                        reducer.ample_worlds += 1
                        reducer.steps_avoided += pruned
                        cur = world.cur
                        child_sleep = frozenset(
                            t for t in live if t != cur
                        )
                        # Threads whose switch was already pruned at the
                        # DFS parent stay asleep through this expansion.
                        reducer.sleep_hits += len(
                            child_sleep & entry[2]
                        )
                    else:
                        reducer.full_expansions += 1
            if not ample:
                reducer.full_expansions += 1
                edges = []
                children = []
                outs_full = successors(
                    ctx, world, outs, thread_results=results
                )
                if not outs_full:
                    graph.stuck.add(sid)
                    all_edges[sid] = []
                    on_stack.discard(sid)
                    stack.pop()
                    continue
                for out in outs_full:
                    if isinstance(out, GAbort):
                        edges.append((Behaviour.ABORT, ABORT_DST))
                        continue
                    dst = ids.get(out.world)
                    if dst is None:
                        if len(states) >= max_states:
                            if strict:
                                raise ExplorationLimit(
                                    "state bound {} exceeded".format(
                                        max_states
                                    )
                                )
                            graph.truncated.add(sid)
                            continue
                        dst = add(out.world)
                    edges.append((out.label, dst))
                    children.append(dst)
            all_edges[sid] = edges
            entry[1] = iter(children)
            entry[2] = child_sleep
    return graph, stack_hwm, reducer


def _record_intern_table_metrics(stats0, stats1):
    """Per-table intern counters as per-run deltas, plus occupancy
    gauges — the honest inputs the heap census needs (tables created
    mid-run simply have a zero baseline)."""
    for name, s1 in stats1.items():
        s0 = stats0.get(
            name, {"hits": 0, "misses": 0, "clears": 0}
        )
        prefix = "intern.table.{}.".format(name)
        obs.inc(prefix + "hits", s1["hits"] - s0["hits"])
        obs.inc(prefix + "misses", s1["misses"] - s0["misses"])
        obs.inc(prefix + "clears", s1["clears"] - s0["clears"])
        obs.set_gauge(prefix + "size", s1["size"])
        obs.gauge_max(prefix + "peak_size", s1["peak_size"])


def _record_explore_metrics(graph, frontier_hwm, sp):
    """Post-hoc accounting over the finished graph (enabled path only).

    Edge-kind counts and dedup hits are derived from the graph instead
    of being counted inside the loop, keeping the hot path untouched.
    """
    n_states = graph.state_count()
    n_event = n_silent = n_switch = n_abort = 0
    n_edges = 0
    for edges in graph.edges.values():
        for label, dst in edges:
            if dst == ABORT_DST:
                n_abort += 1
                continue
            n_edges += 1
            if label == SW:
                n_switch += 1
            elif isinstance(label, EventMsg):
                n_event += 1
            else:
                n_silent += 1
    # Every non-abort edge targets an interned world; all but the
    # newly-discovered ones hit the dedup table.
    dedup_hits = n_edges - (n_states - len(graph.initial))
    obs.inc("explore.states_visited", n_states)
    obs.inc("explore.edges.event", n_event)
    obs.inc("explore.edges.silent", n_silent)
    obs.inc("explore.edges.switch", n_switch)
    obs.inc("explore.edges.abort", n_abort)
    obs.inc("explore.dedup_hits", max(dedup_hits, 0))
    obs.inc("explore.done_states", len(graph.done))
    obs.inc("explore.stuck_states", len(graph.stuck))
    obs.gauge_max("explore.frontier_hwm", frontier_hwm)
    obs.observe("explore.states_per_run", n_states)
    sp.set(
        states=n_states,
        edges=n_edges,
        frontier_hwm=frontier_hwm,
        truncated=len(graph.truncated),
    )


def _is_silent_label(label):
    return label is None or label == SW


def _progress_divergent_states(graph):
    """States lying on a silent cycle that contains a thread step.

    Uses Tarjan's SCC on the silent-edge subgraph; an SCC diverges when
    it contains an internal non-switch silent edge (real thread
    progress) on some cycle. Then every state that silently reaches a
    divergent SCC can diverge.
    """
    n = graph.state_count()
    silent = {
        sid: [
            d
            for (lbl, d) in graph.edges.get(sid, [])
            if d != ABORT_DST and _is_silent_label(lbl)
        ]
        for sid in range(n)
    }
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    counter = [0]
    sccs = []

    def strongconnect(v):
        # Iterative Tarjan to survive deep graphs.
        work = [(v, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = counter[0]
                lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for i in range(pi, len(silent[node])):
                w = silent[node][i]
                if w not in index:
                    work[-1] = (node, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])

    for v in range(n):
        if v not in index:
            strongconnect(v)

    div_core = set()
    for comp in sccs:
        comp_set = set(comp)
        internal_cycle = len(comp) > 1 or any(
            d == comp[0] for d in silent[comp[0]]
        )
        if not internal_cycle:
            continue
        has_progress = any(
            lbl is None and d in comp_set
            for sid in comp
            for (lbl, d) in graph.edges.get(sid, [])
            if d != ABORT_DST and _is_silent_label(lbl)
        )
        if has_progress:
            div_core |= comp_set

    # Backward closure over silent edges.
    rev = {sid: [] for sid in range(n)}
    for sid in range(n):
        for d in silent[sid]:
            rev[d].append(sid)
    div = set(div_core)
    queue = deque(div_core)
    while queue:
        node = queue.popleft()
        for pred in rev[node]:
            if pred not in div:
                div.add(pred)
                queue.append(pred)
    return div


def behaviours(graph, max_events=10, max_nodes=200000, strict=False):
    """The behaviour set of an explored graph.

    Enumerates event traces by BFS over ``(state, trace)`` pairs with
    deduplication; finite because the graph is finite and traces are
    capped at ``max_events`` (longer traces surface as ``cut``).

    When the ``max_nodes`` enumeration bound is hit, the default
    (``strict=False``) degrades gracefully — every still-pending trace
    is reported as ``Behaviour.CUT``, which comparisons already treat
    as inconclusive — matching :func:`explore`'s truncation policy
    instead of crashing report pipelines mid-run. ``strict=True``
    raises :class:`ExplorationLimit`.
    """
    with obs.span("behaviours", max_events=max_events) as sp:
        result = _behaviours(graph, max_events, max_nodes, strict)
        if obs.enabled:
            obs.inc("behaviours.traces", len(result))
            sp.set(traces=len(result))
    return result


def _behaviours(graph, max_events, max_nodes, strict):
    div_states = _progress_divergent_states(graph)
    result = set()
    visited = set()
    queue = deque()
    for sid in graph.initial:
        queue.append((sid, ()))
        visited.add((sid, ()))

    while queue:
        if len(visited) > max_nodes:
            if strict:
                raise ExplorationLimit(
                    "behaviour enumeration bound exceeded"
                )
            # Graceful degradation: pending traces are inconclusive.
            obs.warn(
                "behaviour enumeration truncated at {} nodes; {} "
                "pending trace(s) reported as 'cut'".format(
                    max_nodes, len(queue)
                ),
                max_nodes=max_nodes,
                pending=len(queue),
            )
            if obs.enabled:
                obs.inc("behaviours.truncated_nodes", len(queue))
            for sid, trace in queue:
                result.add(Behaviour(trace, Behaviour.CUT))
            break
        sid, trace = queue.popleft()
        if sid in graph.done:
            result.add(Behaviour(trace, Behaviour.DONE))
            continue
        if sid in graph.stuck:
            result.add(Behaviour(trace, Behaviour.ABORT))
            continue
        if sid in graph.truncated:
            result.add(Behaviour(trace, Behaviour.CUT))
        if sid in div_states:
            result.add(Behaviour(trace, Behaviour.SILENT_DIV))
        for label, dst in graph.edges.get(sid, []):
            if dst == ABORT_DST:
                result.add(Behaviour(trace, Behaviour.ABORT))
                continue
            if isinstance(label, EventMsg):
                if len(trace) >= max_events:
                    result.add(Behaviour(trace, Behaviour.CUT))
                    continue
                nxt = (dst, trace + (label,))
            else:
                nxt = (dst, trace)
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
    return frozenset(result)


def program_behaviours(ctx, semantics, max_states=50000, max_events=10,
                       reduce=None, jobs=None):
    """Explore and extract behaviours in one call.

    ``reduce=None`` defers to the ``REPRO_POR`` environment default
    (on unless disabled) — sound because the cross-validation suite
    pins POR-on and POR-off to identical behaviour sets; pass
    ``reduce=False`` to force the full graph. ``jobs`` shards the
    exploration across worker processes (the behaviour set is
    unchanged — see :mod:`repro.semantics.parallel`).
    """
    if reduce is None:
        reduce = default_reduce()
    graph = explore(ctx, semantics, max_states, reduce=reduce, jobs=jobs)
    return behaviours(graph, max_events)
