"""Global worlds: thread pools, activation stacks, atomic bits (Fig. 7).

A world ``W = (T, t, 𝕕, σ)`` consists of the thread pool, the current
thread id, the per-thread atomic bits, and the memory. As in the paper's
Coq development (and Compositional CompCert), each thread is a *stack* of
module activations ``(tl, F, κ)``: cross-module calls push a new
activation with its own freelist; returns pop it.

Worlds are immutable and hashable — the exploration algorithms use them
as graph nodes. Module declarations are referenced by index into the
:class:`GlobalContext`, which carries the (immutable, but unhashable)
program structure out-of-band.

Hot-path machinery: frames and worlds cache their hash lazily (cores
and memories are hashed once per object, not once per lookup) and are
*hash-consed* through bounded intern tables — the canonical constructors
(:meth:`Frame.make`, every ``World``-producing method) return pointer-
equal objects for equal states, so ``graph.ids`` lookups and dedup-set
membership in the explorer short-circuit on identity. Direct
``Frame(...)``/``World(...)`` construction stays valid (tests use it):
interning is an optimization, structural ``__eq__`` is the truth.
"""

from repro import obs
from repro.common.errors import SemanticsError
from repro.common.freelist import MAX_DEPTH, FreeList
from repro.common.intern import InternTable
from repro.lang.interface import resolve_entry

_FRAMES = InternTable("frame")
_WORLDS = InternTable("world")


def _intern_frame(mod_idx, flist, core):
    """The canonical frame for these components.

    Keyed on the component tuple (not a throwaway ``Frame``), so a hit
    costs one dict probe and no allocation.
    """
    key = (mod_idx, flist, core)
    table = _FRAMES.table
    frame = table.get(key)
    if frame is not None:
        _FRAMES.hits += 1
        return frame
    _FRAMES.misses += 1
    if len(table) >= _FRAMES.max_size:
        # Inlined mirror of InternTable.intern's bookkeeping: the
        # capacity eviction and the occupancy peak must stay visible
        # to the census (obs/heap) even on this hand-inlined path.
        _FRAMES.clears += 1
        table.clear()
    frame = Frame(mod_idx, flist, core)
    table[key] = frame
    if len(table) > _FRAMES.peak_size:
        _FRAMES.peak_size = len(table)
    return frame


def _intern_world(threads, cur, bits, mem):
    """The canonical world for these components (see ``_intern_frame``)."""
    key = (threads, cur, bits, mem)
    table = _WORLDS.table
    world = table.get(key)
    if world is not None:
        _WORLDS.hits += 1
        return world
    _WORLDS.misses += 1
    if len(table) >= _WORLDS.max_size:
        _WORLDS.clears += 1
        table.clear()
    world = World(threads, cur, bits, mem)
    table[key] = world
    if len(table) > _WORLDS.peak_size:
        _WORLDS.peak_size = len(table)
    return world

def reset_intern_tables():
    """Empty the frame/world intern tables.

    Interning is an optimization (structural ``__eq__`` is the truth),
    so this is always safe. The parallel explorer calls it at the
    start of every run: a previous stateless-decode run
    (``REPRO_WIRE_STATELESS=1``) interns worlds whose memories were
    rebuilt with private base dicts, and a later channel run in the
    same process would otherwise inherit those canonical worlds and
    lose every memory-delta opportunity (the encoder's base cache
    matches by ``id``).
    """
    _FRAMES.table.clear()
    _WORLDS.table.clear()


#: Marks a function name defined by more than one module: linking is
#: still fine, but resolving that name is an error (as in
#: :func:`repro.lang.interface.resolve_entry`).
_AMBIGUOUS = object()

#: Negative-cache marker for the probing fallback of ``resolve``.
_UNRESOLVED = object()


class Frame:
    """One module activation ``(tl, F, κ)`` on a thread's stack.

    ``mod_idx`` indexes the module in the :class:`GlobalContext`;
    ``flist`` is the activation's freelist; ``core`` its core state.
    """

    __slots__ = ("mod_idx", "flist", "core", "_hash")

    def __init__(self, mod_idx, flist, core):
        object.__setattr__(self, "mod_idx", mod_idx)
        object.__setattr__(self, "flist", flist)
        object.__setattr__(self, "core", core)

    @classmethod
    def make(cls, mod_idx, flist, core):
        """The canonical (interned) frame for these components."""
        return _intern_frame(mod_idx, flist, core)

    def __setattr__(self, name, value):
        raise AttributeError("Frame is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, Frame)
            and self.mod_idx == other.mod_idx
            and self.flist == other.flist
            and self.core == other.core
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.mod_idx, self.flist, self.core))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "Frame(mod={}, core={!r})".format(self.mod_idx, self.core)

    def with_core(self, core):
        if core is self.core:
            return self
        return _intern_frame(self.mod_idx, self.flist, core)


class World:
    """An immutable global configuration.

    ``threads`` maps (0-based) thread position to a tuple of frames —
    the activation stack, innermost activation *last*; an empty tuple is
    a terminated thread. ``cur`` is the running thread's position;
    ``bits`` the per-thread atomic bits (the preemptive semantics only
    ever sets the current thread's bit, matching the single ``d`` of
    Fig. 7; the non-preemptive semantics uses the full map ``𝕕``).
    """

    __slots__ = ("threads", "cur", "bits", "mem", "_hash")

    def __init__(self, threads, cur, bits, mem):
        object.__setattr__(self, "threads", tuple(threads))
        object.__setattr__(self, "cur", cur)
        object.__setattr__(self, "bits", tuple(bits))
        object.__setattr__(self, "mem", mem)

    @classmethod
    def make(cls, threads, cur, bits, mem):
        """The canonical (interned) world for these components."""
        return _intern_world(tuple(threads), cur, tuple(bits), mem)

    def __setattr__(self, name, value):
        raise AttributeError("World is immutable")

    def __eq__(self, other):
        if self is other:
            return True
        return (
            isinstance(other, World)
            and self.threads == other.threads
            and self.cur == other.cur
            and self.bits == other.bits
            and self.mem == other.mem
        )

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash((self.threads, self.cur, self.bits, self.mem))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self):
        return "World(cur={}, bits={}, live={})".format(
            self.cur, self.bits, sorted(self.live_threads())
        )

    def live_threads(self):
        """Positions of threads that have not terminated."""
        return [i for i, frames in enumerate(self.threads) if frames]

    def is_done(self):
        """All threads terminated."""
        return not any(self.threads)

    def top_frame(self, tid=None):
        """The innermost activation of thread ``tid`` (default: current)."""
        tid = self.cur if tid is None else tid
        frames = self.threads[tid]
        if not frames:
            return None
        return frames[-1]

    def replace_top(self, frame, mem=None, bit=None, cur=None):
        """A world with the current thread's top frame replaced.

        Replacing the top of a *terminated* thread is a semantics bug
        (it would silently resurrect the thread), surfaced loudly like
        stuck states are.
        """
        frames = self.threads[self.cur]
        if not frames:
            raise SemanticsError(
                "replace_top on terminated thread {}".format(self.cur)
            )
        return self._update(
            self.cur,
            frames[:-1] + (frame,),
            mem,
            bit,
            cur,
        )

    def push_frame(self, frame, mem=None):
        """A world with a new activation pushed on the current thread."""
        return self._update(
            self.cur, self.threads[self.cur] + (frame,), mem, None, None
        )

    def pop_frame(self, mem=None):
        """A world with the current thread's top activation popped."""
        return self._update(
            self.cur, self.threads[self.cur][:-1], mem, None, None
        )

    def with_current(self, cur):
        """A world scheduled on thread ``cur``."""
        if cur == self.cur:
            return self
        return _intern_world(self.threads, cur, self.bits, self.mem)

    def add_thread(self, frame):
        """A world with a freshly spawned thread appended."""
        return _intern_world(
            self.threads + ((frame,),),
            self.cur,
            self.bits + (0,),
            self.mem,
        )

    def _update(self, tid, frames, mem, bit, cur):
        threads = list(self.threads)
        threads[tid] = frames
        bits = self.bits
        if bit is not None:
            bits = list(self.bits)
            bits[tid] = bit
            bits = tuple(bits)
        return _intern_world(
            tuple(threads),
            self.cur if cur is None else cur,
            bits,
            self.mem if mem is None else mem,
        )


class GlobalContext:
    """The immutable program structure shared by all worlds.

    Holds the module declarations (so worlds can reference them by
    index) and resolves entry names for thread creation and for
    cross-module calls.

    ``__init__`` precomputes a ``{fname: (mod_idx, decl)}`` resolve
    table from the modules' entry listings, so the engine's cross-module
    call/spawn path is one dict lookup plus one ``init_core`` instead of
    probing every module and re-scanning ``modules`` for the index. When
    a language cannot enumerate its entries
    (:meth:`~repro.lang.interface.ModuleLanguage.entry_names` returns
    ``None``), resolution falls back to probing, memoized per name.
    """

    def __init__(self, program):
        self.program = program
        self.modules = program.modules
        self._resolve_table = self._build_resolve_table()
        self._resolve_cache = {}
        # (fname, args) -> (mod_idx, core) | _UNRESOLVED. Cores are
        # immutable, so the canonical initial core can be shared by
        # every call site; sharing also makes the interned callee
        # frames pointer-equal.
        self._core_cache = {}
        # Engine-side staging caches (see semantics.engine): successor
        # templates keyed (frame, mem) and external-return resumptions
        # keyed (caller_frame, retval). Per-context, not global —
        # ``Frame.mod_idx`` is program-relative, so templates must
        # never leak between programs.
        self.succ_templates = {}
        self.resume_cache = {}
        # Hoisted REPRO_CLOSURE gate: one env read per context instead
        # of one per expansion. explore() refreshes it per run, so
        # toggling the env between runs over a shared context works.
        from repro.lang import closure as _closure

        self.staging = _closure.enabled()

    def _build_resolve_table(self):
        table = {}
        for idx, decl in enumerate(self.modules):
            entry_names = getattr(decl.lang, "entry_names", None)
            names = entry_names(decl.code) if entry_names else None
            if names is None:
                return None
            for fname in names:
                table[fname] = (
                    _AMBIGUOUS if fname in table else (idx, decl)
                )
        return table

    def module(self, idx):
        return self.modules[idx]

    def entry_names(self):
        """Sorted resolvable entry names, or ``None`` when unknown.

        ``None`` means some module's language has no entry listing
        (resolution falls back to probing), so callers — e.g. the
        CLI's ``--threads`` validation — cannot enumerate candidates
        up front. Ambiguous names (defined in several modules) are
        excluded: resolving them raises.
        """
        table = self._resolve_table
        if table is None:
            return None
        return sorted(
            fname
            for fname, entry in table.items()
            if entry is not _AMBIGUOUS
        )

    def resolve(self, fname, args=()):
        """Find ``(mod_idx, core)`` for a function, or ``None``."""
        cached = self._core_cache.get((fname, args))
        if cached is not None:
            if obs.enabled:
                obs.inc("resolve.cache_hits")
            return None if cached is _UNRESOLVED else cached
        resolved = self._resolve_uncached(fname, args)
        try:
            self._core_cache[(fname, args)] = (
                _UNRESOLVED if resolved is None else resolved
            )
        except TypeError:
            # Unhashable args: skip memoization, resolution still works.
            pass
        return resolved

    def _resolve_uncached(self, fname, args):
        table = self._resolve_table
        if table is not None:
            entry = table.get(fname)
            if entry is None:
                return None
            if entry is _AMBIGUOUS:
                raise ValueError(
                    "entry {!r} defined in multiple modules".format(fname)
                )
            mod_idx, decl = entry
            core = decl.lang.init_core(decl.code, fname, args)
            if core is None:
                return None
            return mod_idx, core
        # Probing fallback for languages without entry listings.
        hit = self._resolve_cache.get(fname)
        if hit is not None:
            if obs.enabled:
                obs.inc("resolve.cache_hits")
            if hit is _UNRESOLVED:
                return None
            mod_idx, decl = hit
            core = decl.lang.init_core(decl.code, fname, args)
            if core is None:
                return None
            return mod_idx, core
        found = resolve_entry(self.modules, fname, args)
        if found is None:
            self._resolve_cache[fname] = _UNRESOLVED
            return None
        decl, core = found
        mod_idx = self.modules.index(decl)
        self._resolve_cache[fname] = (mod_idx, decl)
        return mod_idx, core

    def load(self):
        """The Load rule: all initial worlds (one per initial thread).

        Builds the linked initial memory, gives each thread a fresh
        bottom activation with a disjoint freelist, and returns one
        world per choice of initial thread (``t ∈ dom(T)``).
        """
        mem = self.program.initial_memory()
        threads = []
        for pos, entry in enumerate(self.program.entries):
            resolved = self.resolve(entry)
            if resolved is None:
                raise SemanticsError(
                    "entry {!r} not defined by any module".format(entry)
                )
            mod_idx, core = resolved
            flist = FreeList.for_thread(pos)
            threads.append((Frame.make(mod_idx, flist, core),))
        bits = (0,) * len(threads)
        return [
            World.make(threads, cur, bits, mem)
            for cur in range(len(threads))
        ]

    def next_flist(self, world):
        """A fresh freelist for a pushed activation of the current thread.

        Depth-indexed so freelists of nested activations are disjoint
        from each other and from every other thread's.
        """
        depth = len(world.threads[world.cur])
        if depth >= MAX_DEPTH:
            raise SemanticsError("call depth exceeded")
        return FreeList.for_thread(world.cur, depth)

    def spawn_flist(self, world):
        """The freelist of a newly spawned thread.

        New threads take the next thread position, so their address
        space is disjoint from every existing activation's (threads
        are never removed from the pool, only emptied).
        """
        return FreeList.for_thread(len(world.threads))
