"""Global worlds: thread pools, activation stacks, atomic bits (Fig. 7).

A world ``W = (T, t, 𝕕, σ)`` consists of the thread pool, the current
thread id, the per-thread atomic bits, and the memory. As in the paper's
Coq development (and Compositional CompCert), each thread is a *stack* of
module activations ``(tl, F, κ)``: cross-module calls push a new
activation with its own freelist; returns pop it.

Worlds are immutable and hashable — the exploration algorithms use them
as graph nodes. Module declarations are referenced by index into the
:class:`GlobalContext`, which carries the (immutable, but unhashable)
program structure out-of-band.
"""

from repro.common.errors import SemanticsError
from repro.common.freelist import MAX_DEPTH, FreeList
from repro.lang.interface import resolve_entry


class Frame:
    """One module activation ``(tl, F, κ)`` on a thread's stack.

    ``mod_idx`` indexes the module in the :class:`GlobalContext`;
    ``flist`` is the activation's freelist; ``core`` its core state.
    """

    __slots__ = ("mod_idx", "flist", "core")

    def __init__(self, mod_idx, flist, core):
        object.__setattr__(self, "mod_idx", mod_idx)
        object.__setattr__(self, "flist", flist)
        object.__setattr__(self, "core", core)

    def __setattr__(self, name, value):
        raise AttributeError("Frame is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Frame)
            and self.mod_idx == other.mod_idx
            and self.flist == other.flist
            and self.core == other.core
        )

    def __hash__(self):
        return hash((self.mod_idx, self.flist, self.core))

    def __repr__(self):
        return "Frame(mod={}, core={!r})".format(self.mod_idx, self.core)

    def with_core(self, core):
        return Frame(self.mod_idx, self.flist, core)


class World:
    """An immutable global configuration.

    ``threads`` maps (0-based) thread position to a tuple of frames —
    the activation stack, innermost activation *last*; an empty tuple is
    a terminated thread. ``cur`` is the running thread's position;
    ``bits`` the per-thread atomic bits (the preemptive semantics only
    ever sets the current thread's bit, matching the single ``d`` of
    Fig. 7; the non-preemptive semantics uses the full map ``𝕕``).
    """

    __slots__ = ("threads", "cur", "bits", "mem")

    def __init__(self, threads, cur, bits, mem):
        object.__setattr__(self, "threads", tuple(threads))
        object.__setattr__(self, "cur", cur)
        object.__setattr__(self, "bits", tuple(bits))
        object.__setattr__(self, "mem", mem)

    def __setattr__(self, name, value):
        raise AttributeError("World is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, World)
            and self.threads == other.threads
            and self.cur == other.cur
            and self.bits == other.bits
            and self.mem == other.mem
        )

    def __hash__(self):
        return hash((self.threads, self.cur, self.bits, self.mem))

    def __repr__(self):
        return "World(cur={}, bits={}, live={})".format(
            self.cur, self.bits, sorted(self.live_threads())
        )

    def live_threads(self):
        """Positions of threads that have not terminated."""
        return [i for i, frames in enumerate(self.threads) if frames]

    def is_done(self):
        """All threads terminated."""
        return not any(self.threads)

    def top_frame(self, tid=None):
        """The innermost activation of thread ``tid`` (default: current)."""
        tid = self.cur if tid is None else tid
        frames = self.threads[tid]
        if not frames:
            return None
        return frames[-1]

    def replace_top(self, frame, mem=None, bit=None, cur=None):
        """A world with the current thread's top frame replaced."""
        return self._update(
            self.cur,
            self.threads[self.cur][:-1] + (frame,),
            mem,
            bit,
            cur,
        )

    def push_frame(self, frame, mem=None):
        """A world with a new activation pushed on the current thread."""
        return self._update(
            self.cur, self.threads[self.cur] + (frame,), mem, None, None
        )

    def pop_frame(self, mem=None):
        """A world with the current thread's top activation popped."""
        return self._update(
            self.cur, self.threads[self.cur][:-1], mem, None, None
        )

    def with_current(self, cur):
        """A world scheduled on thread ``cur``."""
        return World(self.threads, cur, self.bits, self.mem)

    def add_thread(self, frame):
        """A world with a freshly spawned thread appended."""
        return World(
            self.threads + ((frame,),),
            self.cur,
            self.bits + (0,),
            self.mem,
        )

    def _update(self, tid, frames, mem, bit, cur):
        threads = list(self.threads)
        threads[tid] = frames
        bits = self.bits
        if bit is not None:
            bits = list(self.bits)
            bits[tid] = bit
            bits = tuple(bits)
        return World(
            threads,
            self.cur if cur is None else cur,
            bits,
            self.mem if mem is None else mem,
        )


class GlobalContext:
    """The immutable program structure shared by all worlds.

    Holds the module declarations (so worlds can reference them by
    index) and resolves entry names for thread creation and for
    cross-module calls.
    """

    def __init__(self, program):
        self.program = program
        self.modules = program.modules

    def module(self, idx):
        return self.modules[idx]

    def resolve(self, fname, args=()):
        """Find ``(mod_idx, core)`` for a function, or ``None``."""
        found = resolve_entry(self.modules, fname, args)
        if found is None:
            return None
        decl, core = found
        return self.modules.index(decl), core

    def load(self):
        """The Load rule: all initial worlds (one per initial thread).

        Builds the linked initial memory, gives each thread a fresh
        bottom activation with a disjoint freelist, and returns one
        world per choice of initial thread (``t ∈ dom(T)``).
        """
        mem = self.program.initial_memory()
        threads = []
        for pos, entry in enumerate(self.program.entries):
            resolved = self.resolve(entry)
            if resolved is None:
                raise SemanticsError(
                    "entry {!r} not defined by any module".format(entry)
                )
            mod_idx, core = resolved
            flist = FreeList.for_thread(pos)
            threads.append((Frame(mod_idx, flist, core),))
        bits = (0,) * len(threads)
        return [
            World(threads, cur, bits, mem) for cur in range(len(threads))
        ]

    def next_flist(self, world):
        """A fresh freelist for a pushed activation of the current thread.

        Depth-indexed so freelists of nested activations are disjoint
        from each other and from every other thread's.
        """
        depth = len(world.threads[world.cur])
        if depth >= MAX_DEPTH:
            raise SemanticsError("call depth exceeded")
        return FreeList.for_thread(world.cur, depth)

    def spawn_flist(self, world):
        """The freelist of a newly spawned thread.

        New threads take the next thread position, so their address
        space is disjoint from every existing activation's (threads
        are never removed from the pool, only emptied).
        """
        return FreeList.for_thread(len(world.threads))
