"""Data races, DRF and NPDRF (Fig. 9, Sec. 5).

A program races when, from some reachable world, two different threads
*predict* conflicting footprints — where a prediction is either the
footprint of an enabled silent step (Predict-0, atomic bit 0) or any
prefix-accumulated footprint of a run inside an atomic block the thread
could enter (Predict-1, atomic bit 1). Conflicts require at least one
side to be outside an atomic block (``(δ1,d1) ⌢ (δ2,d2)``).

``DRF`` explores the preemptive world graph; ``NPDRF`` the
non-preemptive one with per-thread atomic bits — their equivalence is
the paper's steps ⑥/⑧, validated empirically by the FIG2-68 benchmark.

Race detection runs **on the fly** by default: :func:`find_race` hooks
into :func:`~repro.semantics.explore.explore` as an observer, checking
each world's predictions as it is expanded and halting the exploration
at the first witness — so a racy program never materialises its full
state space, and under partial-order reduction the ample decision's
one-step outcomes are shared with the predictor. The stored-graph path
(``on_the_fly=False``) is kept for cross-validation. Predictions are
memoized per ``(frame, memory, atomic-bit)``: distinct worlds that
differ only in other threads' components reuse each other's
predictions, which the hash-consed state machinery makes a single dict
probe.

Witnesses are *replayable*: :func:`find_race` attaches the schedule
(the edge-index path from an initial world to the racy world, with
per-step labels and footprints) to every witness it returns, so a
verdict can be independently re-executed
(:mod:`repro.semantics.replay`), shrunk to a locally minimal racy
interleaving, and rendered as a per-thread timeline (``repro
inspect``).
"""

from collections import deque

from repro import obs
from repro.common.footprint import EMP, conflict_atomic
from repro.lang.messages import ENT_ATOM, is_silent
from repro.lang import closure as _closure
from repro.lang.steps import Step
from repro.semantics.explore import explore
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.por import default_reduce
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.witness import capture_schedule
from repro.semantics.world import GlobalContext


class RaceWitness:
    """Evidence of a data race: the world and the two predictions.

    ``schedule`` (attached by :func:`find_race` unless capture is
    disabled) is the replayable path from an initial world to
    ``world`` — see :mod:`repro.semantics.witness`.
    """

    __slots__ = ("world", "tid1", "fp1", "bit1", "tid2", "fp2", "bit2",
                 "schedule")

    def __init__(self, world, tid1, fp1, bit1, tid2, fp2, bit2,
                 schedule=None):
        self.world = world
        self.tid1 = tid1
        self.fp1 = fp1
        self.bit1 = bit1
        self.tid2 = tid2
        self.fp2 = fp2
        self.bit2 = bit2
        self.schedule = schedule

    def __repr__(self):
        return (
            "RaceWitness(t{} {!r} (atomic={}) ⌢ t{} {!r} (atomic={}))"
        ).format(
            self.tid1, self.fp1, self.bit1,
            self.tid2, self.fp2, self.bit2,
        )


def predict(ctx, world, tid, max_atomic_steps=64, quantum=False,
            outcomes=None):
    """All instrumented footprints ``(δ, d)`` thread ``tid`` predicts.

    With ``quantum=False`` (the preemptive Race rule, Fig. 9):
    Predict-0 — footprints of the thread's enabled silent steps, bit 0
    — and Predict-1 — accumulated footprints of an atomic block the
    thread can enter, bit 1.

    With ``quantum=True`` (the non-preemptive notion): prediction
    ranges over the thread's whole *scheduling quantum* — every silent
    step along its solo run up to the next switch point, bit 0, with
    Predict-1 applied at each intermediate state. This is the
    region-conflict view (the paper relates NPDRF to DRFx's
    region-conflict-freedom): suspended threads have no intermediate
    non-preemptive worlds, so their entire region must be predicted
    at once — one-step prediction would miss races in programs with no
    synchronization points at all.

    When the world records the thread inside an atomic block (possible
    non-preemptively), its continuation is predicted with bit 1.

    ``outcomes`` optionally passes in the thread's already-computed raw
    one-step outcomes (shared with the POR ample decision), saving the
    first local step call.
    """
    frame = world.top_frame(tid)
    if frame is None:
        return set()
    decl = ctx.module(frame.mod_idx)
    first_outs = outcomes
    predictions = set()

    if world.bits[tid] == 1:
        return {
            (fp, 1)
            for fp in _atomic_run_footprints(
                decl, frame, frame.core, world.mem, max_atomic_steps
            )
        }

    horizon = max_atomic_steps if quantum else 1
    # Seed the dedup set with the entry state: a silent cycle straight
    # back to the entry core must not re-enqueue it (it used to, wasting
    # a full round of quantum-mode prediction).
    seen = {(frame.core, world.mem)}
    frontier = deque([(frame.core, world.mem, 0)])
    step_outcomes = _closure.step_outcomes
    while frontier:
        core, mem, depth = frontier.popleft()
        if first_outs is not None:
            # The first dequeued element is exactly the entry state the
            # shared outcomes were computed at.
            outs, first_outs = first_outs, None
        else:
            outs = step_outcomes(decl, core, mem, frame.flist)
        for out in outs:
            if not isinstance(out, Step):
                continue
            if is_silent(out.msg):
                if not out.fp.is_empty():
                    predictions.add((out.fp, 0))
                if depth + 1 < horizon:
                    key = (out.core, out.mem)
                    if key not in seen:
                        seen.add(key)
                        frontier.append((out.core, out.mem, depth + 1))
            elif out.msg is ENT_ATOM:
                predictions |= {
                    (fp, 1)
                    for fp in _atomic_run_footprints(
                        decl, frame, out.core, mem, max_atomic_steps
                    )
                }
    return predictions


def _atomic_run_footprints(decl, frame, core, mem, max_steps):
    """Prefix-accumulated footprints of silent runs from inside a block."""
    fps = set()
    seen = set()
    queue = deque([(core, mem, EMP, 0)])
    while queue:
        cur, m, acc, depth = queue.popleft()
        if not acc.is_empty():
            fps.add(acc)
        if depth >= max_steps:
            continue
        for out in _closure.step_outcomes(decl, cur, m, frame.flist):
            if not isinstance(out, Step) or not is_silent(out.msg):
                continue
            nxt = (out.core, out.mem, acc.union(out.fp))
            if nxt in seen:
                continue
            seen.add(nxt)
            queue.append(nxt + (depth + 1,))
    return fps


class _RaceChecker:
    """Per-run observer applying the Race rule to each expanded world.

    Carries the prediction memo table and the plain accounting counters
    that :func:`find_race` flushes into ``obs`` afterwards. Returns
    True (halt the exploration) as soon as a witness is found.
    """

    __slots__ = (
        "ctx",
        "quantum",
        "max_atomic_steps",
        "track",
        "witness",
        "worlds_checked",
        "predictions",
        "pairs_checked",
        "_memo",
        "_memo_hits",
    )

    def __init__(self, ctx, quantum, max_atomic_steps):
        self.ctx = ctx
        self.quantum = quantum
        self.max_atomic_steps = max_atomic_steps
        self.track = obs.enabled
        self.witness = None
        self.worlds_checked = 0
        self.predictions = 0
        self.pairs_checked = 0
        self._memo = {}
        self._memo_hits = 0

    def _predict(self, world, tid, outcomes):
        # Predictions depend only on the thread's top frame, the memory
        # and its atomic bit (quantum/max_atomic_steps are fixed per
        # run) — never on the other threads — so they memoize across
        # worlds that interleave the *other* threads differently.
        key = (world.top_frame(tid), world.mem, world.bits[tid])
        preds = self._memo.get(key)
        if preds is None:
            preds = predict(
                self.ctx, world, tid, self.max_atomic_steps,
                quantum=self.quantum, outcomes=outcomes,
            )
            self._memo[key] = preds
        else:
            self._memo_hits += 1
        return preds

    def __call__(self, world, outcomes=None):
        if world.is_done():
            return False
        # The Race rule applies to worlds where the running thread is
        # not inside an atomic block (Fig. 9: ``W = (T, _, 0, σ)``).
        if world.bits[world.cur] != 0:
            return False
        self.worlds_checked += 1
        cur = world.cur
        live = world.live_threads()
        preds = {
            tid: self._predict(
                world, tid, outcomes if tid == cur else None
            )
            for tid in live
        }
        track = self.track
        if track:
            self.predictions += sum(len(p) for p in preds.values())
        for i, t1 in enumerate(live):
            p1 = preds[t1]
            if not p1:
                continue
            for t2 in live[i + 1:]:
                p2 = preds[t2]
                if track:
                    # Accounting only — guarded like `predictions` so
                    # the disabled path stays free (PR 1's <1% overhead
                    # contract).
                    self.pairs_checked += len(p1) * len(p2)
                for fp1, b1 in p1:
                    for fp2, b2 in p2:
                        if conflict_atomic(fp1, b1, fp2, b2):
                            self.witness = RaceWitness(
                                world, t1, fp1, b1, t2, fp2, b2
                            )
                            return True
        return False


def find_race(ctx, semantics, max_states=50000, max_atomic_steps=None,
              reduce=None, on_the_fly=True, capture=True, jobs=None):
    """Search reachable worlds for a race; returns a witness or ``None``.

    Non-preemptive exploration uses quantum (region) prediction — see
    :func:`predict`. The default mode checks each world while it is
    being explored and halts at the first witness, so peak memory no
    longer retains the full state list when a race shows up early;
    ``on_the_fly=False`` explores first and scans the stored graph (the
    pre-POR code path, kept for cross-validation). ``reduce=None``
    defers to the ``REPRO_POR`` default; reduction only engages for
    semantics that support it (preemptive).

    With ``capture=True`` (the default) a found witness carries a
    replayable :class:`~repro.semantics.witness.Schedule` from an
    initial world to the racy world; for a witness discovered under
    partial-order reduction, capture re-walks the path under the full
    semantics, so POR-found witnesses are cross-checked on the spot.

    ``max_atomic_steps=None`` adopts the semantics object's own bound
    (``semantics.max_atomic_steps``), so witness metadata and the
    prediction horizon can never silently disagree. ``jobs > 1`` runs
    the fused search across forked worker processes
    (:mod:`repro.semantics.parallel`): the verdict is unchanged; which
    of several witnesses is reported first is a scheduling artifact,
    exactly as in the sequential search.
    """
    quantum = isinstance(semantics, NonPreemptiveSemantics)
    if max_atomic_steps is None:
        max_atomic_steps = getattr(semantics, "max_atomic_steps", 64)
    if reduce is None:
        reduce = default_reduce()
    use_parallel = False
    if jobs is not None and jobs > 1:
        from repro.semantics import parallel

        use_parallel = parallel.available()
    track = obs.enabled
    with obs.span(
        "race.find",
        semantics=type(semantics).__name__,
        on_the_fly=on_the_fly,
        jobs=jobs if jobs else 1,
    ) as sp:
        checker = None
        if use_parallel and on_the_fly:
            witness, graph = parallel.parallel_find_race(
                ctx, semantics, max_states=max_states,
                max_atomic_steps=max_atomic_steps, reduce=reduce,
                jobs=jobs,
            )
        else:
            checker = _RaceChecker(ctx, quantum, max_atomic_steps)
            if on_the_fly:
                graph = explore(
                    ctx, semantics, max_states, strict=True,
                    reduce=reduce, observer=checker,
                )
            else:
                graph = explore(
                    ctx, semantics, max_states, strict=True,
                    reduce=reduce, jobs=jobs,
                )
                for world in graph.states:
                    if checker(world):
                        break
            witness = checker.witness
        if witness is not None and capture:
            sid = graph.ids.get(witness.world)
            if sid is not None:
                witness.schedule = capture_schedule(
                    ctx, semantics, graph, sid,
                    por=bool(reduce) and getattr(
                        semantics, "supports_por", False
                    ),
                )
        if track:
            if checker is not None:
                # The parallel path publishes the workers' summed
                # checker counters itself (repro.semantics.parallel).
                obs.inc("race.worlds_checked", checker.worlds_checked)
                obs.inc("race.predictions", checker.predictions)
                obs.inc("race.pairs_checked", checker.pairs_checked)
                obs.inc("race.prediction_memo_hits", checker._memo_hits)
                sp.set(
                    worlds=checker.worlds_checked,
                    pairs=checker.pairs_checked,
                )
            if witness is not None:
                obs.inc("race.witnesses")
            sp.set(racy=witness is not None)
            if witness is not None and witness.schedule is not None:
                sp.set(schedule_steps=len(witness.schedule))
    return witness


def drf(program, max_states=50000, max_atomic_steps=64, reduce=None,
        jobs=None):
    """``DRF(P)``: no race in the preemptive semantics."""
    ctx = GlobalContext(program)
    return (
        find_race(
            ctx, PreemptiveSemantics(max_atomic_steps), max_states,
            max_atomic_steps, reduce=reduce, jobs=jobs,
        )
        is None
    )


def npdrf(program, max_states=50000, max_atomic_steps=64, reduce=None,
          jobs=None):
    """``NPDRF(P)``: no race in the non-preemptive semantics."""
    ctx = GlobalContext(program)
    return (
        find_race(
            ctx, NonPreemptiveSemantics(max_atomic_steps), max_states,
            max_atomic_steps, reduce=reduce, jobs=jobs,
        )
        is None
    )
