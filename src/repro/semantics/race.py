"""Data races, DRF and NPDRF (Fig. 9, Sec. 5).

A program races when, from some reachable world, two different threads
*predict* conflicting footprints — where a prediction is either the
footprint of an enabled silent step (Predict-0, atomic bit 0) or any
prefix-accumulated footprint of a run inside an atomic block the thread
could enter (Predict-1, atomic bit 1). Conflicts require at least one
side to be outside an atomic block (``(δ1,d1) ⌢ (δ2,d2)``).

``DRF`` explores the preemptive world graph; ``NPDRF`` the
non-preemptive one with per-thread atomic bits — their equivalence is
the paper's steps ⑥/⑧, validated empirically by the FIG2-68 benchmark.
"""

from collections import deque

from repro import obs
from repro.common.footprint import EMP, conflict_atomic
from repro.lang.messages import ENT_ATOM, is_silent
from repro.lang.steps import Step
from repro.semantics.explore import explore
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.world import GlobalContext


class RaceWitness:
    """Evidence of a data race: the world and the two predictions."""

    __slots__ = ("world", "tid1", "fp1", "bit1", "tid2", "fp2", "bit2")

    def __init__(self, world, tid1, fp1, bit1, tid2, fp2, bit2):
        self.world = world
        self.tid1 = tid1
        self.fp1 = fp1
        self.bit1 = bit1
        self.tid2 = tid2
        self.fp2 = fp2
        self.bit2 = bit2

    def __repr__(self):
        return (
            "RaceWitness(t{} {!r} (atomic={}) ⌢ t{} {!r} (atomic={}))"
        ).format(
            self.tid1, self.fp1, self.bit1,
            self.tid2, self.fp2, self.bit2,
        )


def _frame_steps(ctx, world, tid):
    frame = world.top_frame(tid)
    if frame is None:
        return None, []
    decl = ctx.module(frame.mod_idx)
    outs = decl.lang.step(decl.code, frame.core, world.mem, frame.flist)
    return (decl, frame), [o for o in outs if isinstance(o, Step)]


def predict(ctx, world, tid, max_atomic_steps=64, quantum=False):
    """All instrumented footprints ``(δ, d)`` thread ``tid`` predicts.

    With ``quantum=False`` (the preemptive Race rule, Fig. 9):
    Predict-0 — footprints of the thread's enabled silent steps, bit 0
    — and Predict-1 — accumulated footprints of an atomic block the
    thread can enter, bit 1.

    With ``quantum=True`` (the non-preemptive notion): prediction
    ranges over the thread's whole *scheduling quantum* — every silent
    step along its solo run up to the next switch point, bit 0, with
    Predict-1 applied at each intermediate state. This is the
    region-conflict view (the paper relates NPDRF to DRFx's
    region-conflict-freedom): suspended threads have no intermediate
    non-preemptive worlds, so their entire region must be predicted
    at once — one-step prediction would miss races in programs with no
    synchronization points at all.

    When the world records the thread inside an atomic block (possible
    non-preemptively), its continuation is predicted with bit 1.
    """
    info, _steps = _frame_steps(ctx, world, tid)
    if info is None:
        return set()
    decl, frame = info
    predictions = set()

    if world.bits[tid] == 1:
        return {
            (fp, 1)
            for fp in _atomic_run_footprints(
                decl, frame, frame.core, world.mem, max_atomic_steps
            )
        }

    horizon = max_atomic_steps if quantum else 1
    seen = set()
    frontier = deque([(frame.core, world.mem, 0)])
    while frontier:
        core, mem, depth = frontier.popleft()
        outs = decl.lang.step(decl.code, core, mem, frame.flist)
        for out in outs:
            if not isinstance(out, Step):
                continue
            if is_silent(out.msg):
                if not out.fp.is_empty():
                    predictions.add((out.fp, 0))
                if depth + 1 < horizon:
                    key = (out.core, out.mem)
                    if key not in seen:
                        seen.add(key)
                        frontier.append((out.core, out.mem, depth + 1))
            elif out.msg is ENT_ATOM:
                predictions |= {
                    (fp, 1)
                    for fp in _atomic_run_footprints(
                        decl, frame, out.core, mem, max_atomic_steps
                    )
                }
    return predictions


def _atomic_run_footprints(decl, frame, core, mem, max_steps):
    """Prefix-accumulated footprints of silent runs from inside a block."""
    fps = set()
    seen = set()
    queue = deque([(core, mem, EMP, 0)])
    while queue:
        cur, m, acc, depth = queue.popleft()
        if not acc.is_empty():
            fps.add(acc)
        if depth >= max_steps:
            continue
        for out in decl.lang.step(decl.code, cur, m, frame.flist):
            if not isinstance(out, Step) or not is_silent(out.msg):
                continue
            nxt = (out.core, out.mem, acc.union(out.fp))
            if nxt in seen:
                continue
            seen.add(nxt)
            queue.append(nxt + (depth + 1,))
    return fps


def find_race(ctx, semantics, max_states=50000, max_atomic_steps=64):
    """Search reachable worlds for a race; returns a witness or ``None``.

    Non-preemptive exploration uses quantum (region) prediction — see
    :func:`predict`.
    """
    quantum = isinstance(semantics, NonPreemptiveSemantics)
    with obs.span(
        "race.find", semantics=type(semantics).__name__
    ) as sp:
        graph = explore(ctx, semantics, max_states, strict=True)
        track = obs.enabled
        worlds_checked = 0
        predictions = 0
        pairs_checked = 0
        witness = None
        for world in graph.states:
            if world.is_done():
                continue
            # The Race rule applies to worlds where the running thread
            # is not inside an atomic block (Fig. 9: ``W = (T, _, 0, σ)``).
            if world.bits[world.cur] != 0:
                continue
            worlds_checked += 1
            live = world.live_threads()
            preds = {
                tid: predict(
                    ctx, world, tid, max_atomic_steps, quantum=quantum
                )
                for tid in live
            }
            if track:
                predictions += sum(len(p) for p in preds.values())
            for i, t1 in enumerate(live):
                for t2 in live[i + 1:]:
                    if track:
                        # Accounting only — guarded like `predictions`
                        # so the disabled path stays free (PR 1's <1%
                        # overhead contract).
                        pairs_checked += len(preds[t1]) * len(preds[t2])
                    for fp1, b1 in preds[t1]:
                        for fp2, b2 in preds[t2]:
                            if conflict_atomic(fp1, b1, fp2, b2):
                                witness = RaceWitness(
                                    world, t1, fp1, b1, t2, fp2, b2
                                )
                                break
                        if witness is not None:
                            break
                    if witness is not None:
                        break
                if witness is not None:
                    break
            if witness is not None:
                break
        if track:
            obs.inc("race.worlds_checked", worlds_checked)
            obs.inc("race.predictions", predictions)
            obs.inc("race.pairs_checked", pairs_checked)
            if witness is not None:
                obs.inc("race.witnesses")
            sp.set(
                worlds=worlds_checked,
                pairs=pairs_checked,
                racy=witness is not None,
            )
    return witness


def drf(program, max_states=50000, max_atomic_steps=64):
    """``DRF(P)``: no race in the preemptive semantics."""
    ctx = GlobalContext(program)
    return (
        find_race(
            ctx, PreemptiveSemantics(), max_states, max_atomic_steps
        )
        is None
    )


def npdrf(program, max_states=50000, max_atomic_steps=64):
    """``NPDRF(P)``: no race in the non-preemptive semantics."""
    ctx = GlobalContext(program)
    return (
        find_race(
            ctx, NonPreemptiveSemantics(), max_states, max_atomic_steps
        )
        is None
    )
