"""The non-preemptive global semantics (Fig. 7, EntAtnp/ExtAtnp + TR rules).

``S1 | … | Sn`` in the paper: the current thread runs without
interruption; the scheduler chooses a (possibly identical) next thread
only at *switch points*:

* entry into an atomic block (EntAtnp);
* exit from an atomic block (ExtAtnp);
* an observable event (output is an interaction point — without it,
  non-preemptive executions of DRF programs could not reproduce every
  interleaving of observable events, breaking Lem. 9);
* thread termination (without it the machine would be stuck with live
  threads remaining).

Switch targets include the current thread itself (``t' ∈ dom(T)``).
"""

from repro.semantics.engine import (
    SW,
    GStep,
    SyncPoint,
    switch_targets,
    thread_successors,
)


class NonPreemptiveSemantics:
    """Successor function for non-preemptive execution."""

    name = "non-preemptive"

    def __init__(self, max_atomic_steps=64):
        #: Bound on atomic-block / quantum prediction runs (see
        #: :func:`repro.semantics.race.predict`); carried on the
        #: semantics so callers and witness metadata agree on it.
        self.max_atomic_steps = max_atomic_steps

    def successors(self, ctx, world):
        """All global steps from ``world``; switches only at sync points."""
        results = []
        for outcome in thread_successors(ctx, world):
            if not isinstance(outcome, SyncPoint):
                results.append(outcome)
                continue
            # The sync step itself, staying on the same thread (kept
            # when the thread is still live, or when it was the last
            # live thread — the world is then fully terminated)...
            stayed = outcome.world
            if stayed.top_frame() is not None or stayed.is_done():
                results.append(GStep(outcome.label, outcome.fp, stayed))
            # ...and the same step bundled with a switch to each other
            # live thread (the ``:sw=⇒`` steps of EntAtnp/ExtAtnp).
            for target in switch_targets(stayed, include_self=False):
                switched = stayed.with_current(target)
                results.append(
                    GStep(
                        outcome.label if outcome.label else SW,
                        outcome.fp,
                        switched,
                    )
                )
        return results

    def initial_worlds(self, ctx):
        return ctx.load()


def successors(ctx, world):
    """Module-level convenience wrapper."""
    return NonPreemptiveSemantics().successors(ctx, world)
