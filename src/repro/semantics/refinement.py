"""Event-trace refinement ``⊑`` and equivalence ``≈`` (Sec. 3.2).

``S ⊑ C`` iff every observable behaviour of ``S`` is a behaviour of
``C`` (following CompCert, refinement is behaviour-set inclusion). The
paper also uses the weaker ``⊑′`` (Thm 15) that does not preserve
termination: we realize it by ignoring divergence markers.

Any ``cut`` behaviour (exploration bound hit) makes a comparison
*inconclusive* rather than silently passing — results carry a flag.
"""

from repro.semantics.explore import Behaviour


class RefinementResult:
    """Outcome of a behaviour-set comparison."""

    __slots__ = ("holds", "counterexamples", "inconclusive")

    def __init__(self, holds, counterexamples=(), inconclusive=False):
        self.holds = holds
        self.counterexamples = tuple(counterexamples)
        self.inconclusive = inconclusive

    def __bool__(self):
        return self.holds and not self.inconclusive

    def __repr__(self):
        return "RefinementResult(holds={}, inconclusive={}, cex={})".format(
            self.holds, self.inconclusive, len(self.counterexamples)
        )


def _split(behs):
    cuts = {b for b in behs if b.end == Behaviour.CUT}
    rest = {b for b in behs if b.end != Behaviour.CUT}
    return rest, cuts


def refines(lhs, rhs, termination_sensitive=True):
    """``lhs ⊑ rhs``: every behaviour of ``lhs`` occurs in ``rhs``.

    With ``termination_sensitive=False`` this is the paper's ``⊑′``:
    ``silent_div`` behaviours of either side are disregarded, so the
    comparison constrains only terminating and aborting executions.
    """
    lhs_rest, lhs_cuts = _split(lhs)
    rhs_rest, rhs_cuts = _split(rhs)
    if not termination_sensitive:
        lhs_rest = {
            b for b in lhs_rest if b.end != Behaviour.SILENT_DIV
        }
        rhs_rest = {
            b for b in rhs_rest if b.end != Behaviour.SILENT_DIV
        }
    missing = sorted(
        (b for b in lhs_rest if b not in rhs_rest),
        key=lambda b: (len(b.events), repr(b)),
    )
    return RefinementResult(
        holds=not missing,
        counterexamples=missing,
        inconclusive=bool(lhs_cuts or rhs_cuts),
    )


def equivalent(lhs, rhs, termination_sensitive=True):
    """``lhs ≈ rhs``: refinement in both directions."""
    fwd = refines(lhs, rhs, termination_sensitive)
    bwd = refines(rhs, lhs, termination_sensitive)
    return RefinementResult(
        holds=fwd.holds and bwd.holds,
        counterexamples=fwd.counterexamples + bwd.counterexamples,
        inconclusive=fwd.inconclusive or bwd.inconclusive,
    )


def safe(behs):
    """``Safe(P)``: no execution aborts (premise of Def. 11 / Thm 15)."""
    rest, cuts = _split(behs)
    has_abort = any(b.end == Behaviour.ABORT for b in rest)
    return RefinementResult(
        holds=not has_abort,
        counterexamples=tuple(
            b for b in rest if b.end == Behaviour.ABORT
        ),
        inconclusive=bool(cuts),
    )
