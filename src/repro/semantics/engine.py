"""Shared machinery of the two global semantics.

Both the preemptive and the non-preemptive semantics execute the current
thread's top activation and process the resulting message the same way
(Fig. 7's ``τ``-step / EntAt / ExtAt rules, plus the call/return
protocol of the interaction semantics). They differ only in *where
context switches may occur*, which each semantics module adds on top.

A global step outcome is a :class:`GStep` (label + successor world) or
:class:`GAbort`. Labels:

* ``None`` — silent (τ, internal call/return, thread termination);
* an :class:`~repro.lang.messages.EventMsg` — observable event;
* ``"sw"`` — a context switch (visible in ``=⇒*`` but not in traces).
"""

from repro import obs
from repro.common.errors import SemanticsError
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
    is_silent,
)
from repro.lang.steps import Step, StepAbort
from repro.semantics.world import Frame

#: Context-switch label.
SW = "sw"


def label_kind(label):
    """The schedule-artifact classification of a global-step label.

    The witness subsystem records and replays edges by this kind tag:
    ``"tau"`` (silent, including internal call/return and atomic
    boundaries), ``"sw"`` (a pure context switch), ``"event"`` (an
    observable event — non-preemptively this may also carry a bundled
    switch, visible as a changed current thread), or the stringified
    label otherwise (the explorer's ``"abort"`` pseudo-label).
    """
    if label is None:
        return "tau"
    if label == SW:
        return "sw"
    if isinstance(label, EventMsg):
        return "event"
    return str(label)


class GStep:
    """A successful global step: label, footprint, successor world.

    Ephemeral (consumed by the explorer, never stored in graphs or
    hashed), so unlike worlds it skips immutability enforcement — it is
    constructed once per candidate edge on the hottest path.
    """

    __slots__ = ("label", "fp", "world")

    def __init__(self, label, fp, world):
        self.label = label
        self.fp = fp
        self.world = world

    def __repr__(self):
        return "GStep(label={!r})".format(self.label)


class GAbort:
    """The global abort outcome."""

    __slots__ = ("reason",)

    def __init__(self, reason=""):
        object.__setattr__(self, "reason", reason)

    def __setattr__(self, name, value):
        raise AttributeError("GAbort is immutable")

    def __repr__(self):
        return "GAbort({!r})".format(self.reason)


class SyncPoint:
    """A successor that the calling semantics may add switches to.

    ``kind`` records which message produced it (``"ent"``, ``"ext"``,
    ``"event"``, ``"term"``) so the non-preemptive semantics can decide
    which of its switch rules applies.
    """

    __slots__ = ("kind", "label", "fp", "world")

    def __init__(self, kind, label, fp, world):
        self.kind = kind
        self.label = label
        self.fp = fp
        self.world = world


def thread_successors(ctx, world, outcomes=None):
    """Execute one step of the current thread; no scheduling decisions.

    Returns a list of :class:`GStep` / :class:`GAbort` /
    :class:`SyncPoint`. SyncPoints are steps at which the non-preemptive
    semantics switches; the preemptive semantics converts them to plain
    GSteps (it has its own free Switch rule instead).

    ``outcomes`` lets a caller that already ran the local step function
    for this world (the POR ample decision) pass the raw outcome list
    in, so full expansions after a refused reduction don't step twice.
    """
    frame = world.top_frame()
    if frame is None:
        return []
    decl = ctx.module(frame.mod_idx)
    if outcomes is None:
        outcomes = decl.lang.step(
            decl.code, frame.core, world.mem, frame.flist
        )
    results = []
    for outcome in outcomes:
        if isinstance(outcome, StepAbort):
            results.append(GAbort(outcome.reason))
            continue
        results.append(_process_step(ctx, world, frame, decl, outcome))
    if obs.enabled:
        # One flag test on the disabled path; detailed edge-kind
        # accounting happens post-hoc in the explorer.
        obs.inc("engine.expansions")
        obs.inc("engine.outcomes", len(results))
        for r in results:
            if isinstance(r, GAbort):
                obs.inc("engine.aborts")
    return results


def _process_step(ctx, world, frame, decl, step):
    msg = step.msg
    bit = world.bits[world.cur]

    if is_silent(msg):
        nxt = world.replace_top(frame.with_core(step.core), mem=step.mem)
        return GStep(None, step.fp, nxt)

    if msg is ENT_ATOM:
        if bit != 0:
            raise SemanticsError("nested atomic block")
        if not step.fp.is_empty() or step.mem != world.mem:
            raise SemanticsError("EntAtom must be pure (Fig. 7 EntAt)")
        nxt = world.replace_top(
            frame.with_core(step.core), mem=step.mem, bit=1
        )
        return SyncPoint("ent", None, step.fp, nxt)

    if msg is EXT_ATOM:
        if bit != 1:
            raise SemanticsError("ExtAtom outside an atomic block")
        if not step.fp.is_empty() or step.mem != world.mem:
            raise SemanticsError("ExtAtom must be pure (Fig. 7 ExtAt)")
        nxt = world.replace_top(
            frame.with_core(step.core), mem=step.mem, bit=0
        )
        return SyncPoint("ext", None, step.fp, nxt)

    if isinstance(msg, EventMsg):
        nxt = world.replace_top(frame.with_core(step.core), mem=step.mem)
        return SyncPoint("event", msg, step.fp, nxt)

    if isinstance(msg, RetMsg):
        popped = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        ).pop_frame()
        if popped.threads[world.cur]:
            # Return to the caller activation: resume its waiting core.
            caller = popped.top_frame()
            caller_decl = ctx.module(caller.mod_idx)
            resumed = caller_decl.lang.after_external(
                caller.core, msg.value
            )
            nxt = popped.replace_top(caller.with_core(resumed))
            return GStep(None, step.fp, nxt)
        # Bottom activation: the thread terminates.
        return SyncPoint("term", None, step.fp, popped)

    if isinstance(msg, CallMsg):
        advanced = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        )
        resolved = ctx.resolve(msg.fname, msg.args)
        if resolved is None:
            return GAbort("unresolved external {!r}".format(msg.fname))
        mod_idx, core = resolved
        callee = Frame.make(mod_idx, ctx.next_flist(world), core)
        return GStep(None, step.fp, advanced.push_frame(callee))

    if isinstance(msg, SpawnMsg):
        advanced = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        )
        resolved = ctx.resolve(msg.fname, ())
        if resolved is None:
            return GAbort("spawn of unresolved {!r}".format(msg.fname))
        mod_idx, core = resolved
        # The new thread gets a fresh, disjoint freelist — the paper's
        # requirement for the spawn step.
        child = Frame.make(mod_idx, ctx.spawn_flist(world), core)
        return SyncPoint("spawn", None, step.fp,
                         advanced.add_thread(child))

    raise SemanticsError("unknown message {!r}".format(msg))


def switch_targets(world, include_self):
    """Live threads the scheduler may switch to."""
    live = world.live_threads()
    if include_self:
        return live
    return [t for t in live if t != world.cur]
