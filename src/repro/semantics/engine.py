"""Shared machinery of the two global semantics.

Both the preemptive and the non-preemptive semantics execute the current
thread's top activation and process the resulting message the same way
(Fig. 7's ``τ``-step / EntAt / ExtAt rules, plus the call/return
protocol of the interaction semantics). They differ only in *where
context switches may occur*, which each semantics module adds on top.

A global step outcome is a :class:`GStep` (label + successor world) or
:class:`GAbort`. Labels:

* ``None`` — silent (τ, internal call/return, thread termination);
* an :class:`~repro.lang.messages.EventMsg` — observable event;
* ``"sw"`` — a context switch (visible in ``=⇒*`` but not in traces).
"""

from repro import obs
from repro.common.errors import SemanticsError
from repro.lang import closure as _closure
from repro.lang.messages import (
    ENT_ATOM,
    EXT_ATOM,
    CallMsg,
    EventMsg,
    RetMsg,
    SpawnMsg,
    is_silent,
)
from repro.lang.steps import Step, StepAbort
from repro.semantics.world import Frame

#: Context-switch label.
SW = "sw"


def label_kind(label):
    """The schedule-artifact classification of a global-step label.

    The witness subsystem records and replays edges by this kind tag:
    ``"tau"`` (silent, including internal call/return and atomic
    boundaries), ``"sw"`` (a pure context switch), ``"event"`` (an
    observable event — non-preemptively this may also carry a bundled
    switch, visible as a changed current thread), or the stringified
    label otherwise (the explorer's ``"abort"`` pseudo-label).
    """
    if label is None:
        return "tau"
    if label == SW:
        return "sw"
    if isinstance(label, EventMsg):
        return "event"
    return str(label)


class GStep:
    """A successful global step: label, footprint, successor world.

    Ephemeral (consumed by the explorer, never stored in graphs or
    hashed), so unlike worlds it skips immutability enforcement — it is
    constructed once per candidate edge on the hottest path.
    """

    __slots__ = ("label", "fp", "world")

    def __init__(self, label, fp, world):
        self.label = label
        self.fp = fp
        self.world = world

    def __repr__(self):
        return "GStep(label={!r})".format(self.label)


class GAbort:
    """The global abort outcome."""

    __slots__ = ("reason",)

    def __init__(self, reason=""):
        object.__setattr__(self, "reason", reason)

    def __setattr__(self, name, value):
        raise AttributeError("GAbort is immutable")

    def __repr__(self):
        return "GAbort({!r})".format(self.reason)


class SyncPoint:
    """A successor that the calling semantics may add switches to.

    ``kind`` records which message produced it (``"ent"``, ``"ext"``,
    ``"event"``, ``"term"``) so the non-preemptive semantics can decide
    which of its switch rules applies.
    """

    __slots__ = ("kind", "label", "fp", "world")

    def __init__(self, kind, label, fp, world):
        self.kind = kind
        self.label = label
        self.fp = fp
        self.world = world


#: Successor-template entry kinds (see ``_build_template``). Small
#: ints, matched with ``==`` in the assembly loop.
_T_TAU = 0
_T_ENT = 1
_T_EXT = 2
_T_EVENT = 3
_T_RET = 4
_T_CALL = 5
_T_SPAWN = 6
_T_ABORT = 7

#: Bound on each context's (frame, mem) → template table; cleared and
#: rebuilt on overflow, like the intern tables.
TEMPLATE_MAX = 1 << 19


def thread_successors(ctx, world, outcomes=None):
    """Execute one step of the current thread; no scheduling decisions.

    Returns a list of :class:`GStep` / :class:`GAbort` /
    :class:`SyncPoint`. SyncPoints are steps at which the non-preemptive
    semantics switches; the preemptive semantics converts them to plain
    GSteps (it has its own free Switch rule instead).

    ``outcomes`` lets a caller that already ran the local step function
    for this world (the POR ample decision) pass the raw outcome list
    in, so full expansions after a refused reduction don't step twice.
    """
    if outcomes is None:
        return thread_expansion(ctx, world)[1] or []
    frame = world.top_frame()
    if frame is None:
        return []
    decl = ctx.module(frame.mod_idx)
    results = []
    for outcome in outcomes:
        if isinstance(outcome, StepAbort):
            results.append(GAbort(outcome.reason))
            continue
        results.append(_process_step(ctx, world, frame, decl, outcome))
    if obs.enabled:
        # One flag test on the disabled path; detailed edge-kind
        # accounting happens post-hoc in the explorer.
        obs.inc("engine.expansions")
        obs.inc("engine.outcomes", len(results))
        for r in results:
            if isinstance(r, GAbort):
                obs.inc("engine.aborts")
    return results


def thread_expansion(ctx, world):
    """Step the current thread: ``(raw outcomes, global results)``.

    The one-call expansion both exploration drivers use. Returns
    ``(None, None)`` when the current thread has terminated.

    With closure compilation on, the local step goes through the
    staged module (:mod:`repro.lang.closure`) and the message
    processing through a **successor template** cached per
    ``(frame, mem)`` on the context: everything world-independent —
    the stepped frame, the successor memory, footprints, ent/ext
    purity validation — is computed once, and per-world assembly only
    splices in what actually depends on the world (atomic-bit checks,
    freelists, stack pops, thread creation). Both caches key on
    immutable interned values, so equal states hit regardless of the
    path that produced them.
    """
    frame = world.top_frame()
    if frame is None:
        return None, None
    if ctx.staging:
        cache = ctx.succ_templates
        key = (frame, world.mem)
        entry = cache.get(key)
        if entry is None:
            decl = ctx.module(frame.mod_idx)
            outcomes = _closure.step_outcomes(
                decl, frame.core, world.mem, frame.flist
            )
            entry = (outcomes, _build_template(frame, world.mem, outcomes))
            if len(cache) >= TEMPLATE_MAX:
                cache.clear()
            cache[key] = entry
        outcomes, template = entry
        # Fast path: the overwhelmingly common deterministic silent
        # step (one τ entry) skips the assembly loop.
        if len(template) == 1 and template[0][0] == _T_TAU:
            e = template[0]
            results = [
                GStep(None, e[1], world.replace_top(e[2], mem=e[3]))
            ]
        else:
            results = _assemble(ctx, world, template)
    else:
        decl = ctx.module(frame.mod_idx)
        outcomes = decl.lang.step(
            decl.code, frame.core, world.mem, frame.flist
        )
        results = []
        for outcome in outcomes:
            if isinstance(outcome, StepAbort):
                results.append(GAbort(outcome.reason))
            else:
                results.append(
                    _process_step(ctx, world, frame, decl, outcome)
                )
    if obs.enabled:
        obs.inc("engine.expansions")
        obs.inc("engine.outcomes", len(results))
        for r in results:
            if isinstance(r, GAbort):
                obs.inc("engine.aborts")
    return outcomes, results


def _build_template(frame, mem, outcomes):
    """Precompile one step's outcomes into world-independent entries.

    Each entry is a small tuple headed by a ``_T_*`` kind; the
    world-dependent residue (bit checks, freelist allocation, caller
    resumption) is left to :func:`_assemble`, which replicates
    :func:`_process_step` exactly. Purity violations of the atomic
    boundary messages are world-independent, so they surface here — at
    the same expansion that would have raised interpretively.
    """
    entries = []
    for step in outcomes:
        if isinstance(step, StepAbort):
            entries.append((_T_ABORT, step.reason))
            continue
        msg = step.msg
        nframe = frame.with_core(step.core)
        if is_silent(msg):
            entries.append((_T_TAU, step.fp, nframe, step.mem))
        elif msg is ENT_ATOM:
            if not step.fp.is_empty() or step.mem != mem:
                raise SemanticsError("EntAtom must be pure (Fig. 7 EntAt)")
            entries.append((_T_ENT, step.fp, nframe))
        elif msg is EXT_ATOM:
            if not step.fp.is_empty() or step.mem != mem:
                raise SemanticsError("ExtAtom must be pure (Fig. 7 ExtAt)")
            entries.append((_T_EXT, step.fp, nframe))
        elif isinstance(msg, EventMsg):
            entries.append((_T_EVENT, msg, step.fp, nframe, step.mem))
        elif isinstance(msg, RetMsg):
            entries.append((_T_RET, step.fp, nframe, step.mem, msg.value))
        elif isinstance(msg, CallMsg):
            entries.append(
                (_T_CALL, step.fp, nframe, step.mem, msg.fname, msg.args)
            )
        elif isinstance(msg, SpawnMsg):
            entries.append((_T_SPAWN, step.fp, nframe, step.mem, msg.fname))
        else:
            raise SemanticsError("unknown message {!r}".format(msg))
    return entries


def _assemble(ctx, world, template):
    """Instantiate a successor template at one world."""
    results = []
    append = results.append
    cur = world.cur
    for entry in template:
        kind = entry[0]
        if kind == _T_TAU:
            append(GStep(
                None, entry[1], world.replace_top(entry[2], mem=entry[3])
            ))
        elif kind == _T_RET:
            _, fp, nframe, nmem, value = entry
            popped = world.replace_top(nframe, mem=nmem).pop_frame()
            if popped.threads[cur]:
                caller = popped.top_frame()
                rcache = ctx.resume_cache
                rkey = (caller, value)
                resumed = rcache.get(rkey)
                if resumed is None:
                    caller_decl = ctx.module(caller.mod_idx)
                    resumed = caller.with_core(
                        caller_decl.lang.after_external(caller.core, value)
                    )
                    rcache[rkey] = resumed
                append(GStep(None, fp, popped.replace_top(resumed)))
            else:
                append(SyncPoint("term", None, fp, popped))
        elif kind == _T_CALL:
            _, fp, nframe, nmem, fname, args = entry
            resolved = ctx.resolve(fname, args)
            if resolved is None:
                append(GAbort("unresolved external {!r}".format(fname)))
            else:
                mod_idx, core = resolved
                callee = Frame.make(mod_idx, ctx.next_flist(world), core)
                append(GStep(
                    None, fp,
                    world.replace_top(nframe, mem=nmem).push_frame(callee),
                ))
        elif kind == _T_EVENT:
            _, msg, fp, nframe, nmem = entry
            append(SyncPoint(
                "event", msg, fp, world.replace_top(nframe, mem=nmem)
            ))
        elif kind == _T_ENT:
            if world.bits[cur] != 0:
                raise SemanticsError("nested atomic block")
            append(SyncPoint(
                "ent", None, entry[1],
                world.replace_top(entry[2], bit=1),
            ))
        elif kind == _T_EXT:
            if world.bits[cur] != 1:
                raise SemanticsError("ExtAtom outside an atomic block")
            append(SyncPoint(
                "ext", None, entry[1],
                world.replace_top(entry[2], bit=0),
            ))
        elif kind == _T_SPAWN:
            _, fp, nframe, nmem, fname = entry
            resolved = ctx.resolve(fname, ())
            if resolved is None:
                append(GAbort("spawn of unresolved {!r}".format(fname)))
            else:
                mod_idx, core = resolved
                child = Frame.make(mod_idx, ctx.spawn_flist(world), core)
                append(SyncPoint(
                    "spawn", None, fp,
                    world.replace_top(nframe, mem=nmem).add_thread(child),
                ))
        else:  # _T_ABORT
            append(GAbort(entry[1]))
    return results


def _process_step(ctx, world, frame, decl, step):
    msg = step.msg
    bit = world.bits[world.cur]

    if is_silent(msg):
        nxt = world.replace_top(frame.with_core(step.core), mem=step.mem)
        return GStep(None, step.fp, nxt)

    if msg is ENT_ATOM:
        if bit != 0:
            raise SemanticsError("nested atomic block")
        if not step.fp.is_empty() or step.mem != world.mem:
            raise SemanticsError("EntAtom must be pure (Fig. 7 EntAt)")
        nxt = world.replace_top(
            frame.with_core(step.core), mem=step.mem, bit=1
        )
        return SyncPoint("ent", None, step.fp, nxt)

    if msg is EXT_ATOM:
        if bit != 1:
            raise SemanticsError("ExtAtom outside an atomic block")
        if not step.fp.is_empty() or step.mem != world.mem:
            raise SemanticsError("ExtAtom must be pure (Fig. 7 ExtAt)")
        nxt = world.replace_top(
            frame.with_core(step.core), mem=step.mem, bit=0
        )
        return SyncPoint("ext", None, step.fp, nxt)

    if isinstance(msg, EventMsg):
        nxt = world.replace_top(frame.with_core(step.core), mem=step.mem)
        return SyncPoint("event", msg, step.fp, nxt)

    if isinstance(msg, RetMsg):
        popped = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        ).pop_frame()
        if popped.threads[world.cur]:
            # Return to the caller activation: resume its waiting core.
            caller = popped.top_frame()
            caller_decl = ctx.module(caller.mod_idx)
            resumed = caller_decl.lang.after_external(
                caller.core, msg.value
            )
            nxt = popped.replace_top(caller.with_core(resumed))
            return GStep(None, step.fp, nxt)
        # Bottom activation: the thread terminates.
        return SyncPoint("term", None, step.fp, popped)

    if isinstance(msg, CallMsg):
        advanced = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        )
        resolved = ctx.resolve(msg.fname, msg.args)
        if resolved is None:
            return GAbort("unresolved external {!r}".format(msg.fname))
        mod_idx, core = resolved
        callee = Frame.make(mod_idx, ctx.next_flist(world), core)
        return GStep(None, step.fp, advanced.push_frame(callee))

    if isinstance(msg, SpawnMsg):
        advanced = world.replace_top(
            frame.with_core(step.core), mem=step.mem
        )
        resolved = ctx.resolve(msg.fname, ())
        if resolved is None:
            return GAbort("spawn of unresolved {!r}".format(msg.fname))
        mod_idx, core = resolved
        # The new thread gets a fresh, disjoint freelist — the paper's
        # requirement for the spawn step.
        child = Frame.make(mod_idx, ctx.spawn_flist(world), core)
        return SyncPoint("spawn", None, step.fp,
                         advanced.add_thread(child))

    raise SemanticsError("unknown message {!r}".format(msg))


def switch_targets(world, include_self):
    """Live threads the scheduler may switch to."""
    live = world.live_threads()
    if include_self:
        return live
    return [t for t in live if t != world.cur]
