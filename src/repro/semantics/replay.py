"""Deterministic replay and minimization of recorded schedules.

The other half of the witness subsystem
(:mod:`repro.semantics.witness`): given a schedule, **re-execute** it
under the plain global semantics and assert the recorded verdict
reproduces, or **shrink** it to a locally minimal racy interleaving.

Replay is strict: at every step the successor index must be in range
and the resulting edge must match the recorded acting thread, label
kind, scheduled thread, and footprint; the final verdict (the abort,
or the conflicting prediction pair of a race) is re-derived from
scratch at the final world. Any mismatch raises a structured
:class:`ReplayDivergence` naming the first diverging step — a replay
that "mostly works" is a broken artifact, not a passing one. Replay
never applies partial-order reduction: schedules recorded under POR
re-execute on the full semantics, which is the paper-level soundness
cross-check (reduction must not invent or lose interleavings).

Minimization is ddmin-style over the schedule's *moves* (acting
thread + label kind + footprint, rather than raw successor indices,
which are context-dependent): candidate subsequences are re-walked by
matching each move against the enabled successors, and a candidate
survives iff the walk completes and the Race rule fires at (or before)
its final world. Chunked deletion shrinks context-switch round-trips
and padding steps that raw index surgery could never remove; the
result is re-captured as an exact index schedule, so minimized
witnesses are just as replayable as originals.
"""

import time

from repro import obs
from repro.common.footprint import Footprint, conflict_atomic
from repro.semantics.engine import GAbort, label_kind
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.preemptive import PreemptiveSemantics
from repro.semantics.race import _RaceChecker, predict
from repro.semantics.witness import (
    CaptureError,
    Schedule,
    WitnessRecord,
    _make_step,
)

_SEMANTICS = {
    PreemptiveSemantics.name: PreemptiveSemantics,
    NonPreemptiveSemantics.name: NonPreemptiveSemantics,
}


def semantics_for(name):
    """The semantics instance a schedule names."""
    cls = _SEMANTICS.get(name)
    if cls is None:
        raise CaptureError(
            "unknown semantics {!r} (expected one of {})".format(
                name, sorted(_SEMANTICS)
            )
        )
    return cls()


class ReplayDivergence(Exception):
    """Replay failed to reproduce a recorded schedule or verdict.

    ``step`` is the 0-based index of the first mismatching schedule
    step (``-1`` for setup problems, ``len(steps)`` for a verdict that
    fails to re-derive at the final world); ``reason`` a short tag;
    ``expected``/``actual`` the mismatching values.
    """

    def __init__(self, step, reason, expected=None, actual=None):
        self.step = step
        self.reason = reason
        self.expected = expected
        self.actual = actual
        msg = "replay diverged at step {}: {}".format(step, reason)
        if expected is not None or actual is not None:
            msg += " (expected {!r}, got {!r})".format(expected, actual)
        super().__init__(msg)


class ReplayResult:
    """A successful replay: the worlds visited and how the walk ended.

    ``end`` is ``"state"`` (the schedule walked to its final world) or
    ``"abort"`` (the recorded aborting step reproduced); ``world`` the
    final world; ``worlds`` every world visited, initial included.
    """

    __slots__ = ("world", "end", "worlds")

    def __init__(self, world, end, worlds):
        self.world = world
        self.end = end
        self.worlds = tuple(worlds)

    def __repr__(self):
        return "ReplayResult(end={!r}, {} world(s))".format(
            self.end, len(self.worlds)
        )


def replay_schedule(ctx, schedule, semantics=None):
    """Drive ``semantics`` along ``schedule``, verifying every step.

    ``semantics`` defaults to the one the schedule was recorded under.
    Returns a :class:`ReplayResult`; raises :class:`ReplayDivergence`
    at the first mismatch.
    """
    if semantics is None:
        semantics = semantics_for(schedule.semantics)
    with obs.span(
        "replay", semantics=semantics.name, steps=len(schedule.steps)
    ):
        result = _replay(ctx, schedule, semantics)
    if obs.enabled:
        obs.inc("replay.runs")
        obs.inc("replay.steps", len(result.worlds) - 1)
    return result


def _replay(ctx, schedule, semantics):
    worlds = semantics.initial_worlds(ctx)
    if not 0 <= schedule.init < len(worlds):
        raise ReplayDivergence(
            -1, "initial world index out of range",
            expected="0..{}".format(len(worlds) - 1),
            actual=schedule.init,
        )
    world = worlds[schedule.init]
    visited = [world]
    last = len(schedule.steps) - 1
    for n, st in enumerate(schedule.steps):
        if world.is_done():
            raise ReplayDivergence(
                n, "world terminated before the schedule ended"
            )
        outs = semantics.successors(ctx, world)
        if not 0 <= st.index < len(outs):
            raise ReplayDivergence(
                n, "successor index out of range",
                expected="0..{}".format(len(outs) - 1),
                actual=st.index,
            )
        out = outs[st.index]
        if isinstance(out, GAbort):
            if st.kind != "abort":
                raise ReplayDivergence(
                    n, "unexpected abort", expected=st.kind,
                    actual="abort",
                )
            if n != last:
                raise ReplayDivergence(
                    n, "abort before the end of the schedule"
                )
            return ReplayResult(world, "abort", visited)
        if st.kind == "abort":
            raise ReplayDivergence(
                n, "recorded abort did not reproduce",
                expected="abort", actual=label_kind(out.label),
            )
        if st.tid is not None and world.cur != st.tid:
            raise ReplayDivergence(
                n, "acting thread mismatch", expected=st.tid,
                actual=world.cur,
            )
        kind = label_kind(out.label)
        if kind != st.kind:
            raise ReplayDivergence(
                n, "label kind mismatch", expected=st.kind, actual=kind
            )
        if kind == "event" and st.detail is not None:
            actual = (out.label.kind, str(out.label.value))
            if tuple(st.detail) != actual:
                raise ReplayDivergence(
                    n, "event mismatch", expected=tuple(st.detail),
                    actual=actual,
                )
        if st.to is not None and out.world.cur != st.to:
            raise ReplayDivergence(
                n, "scheduled thread mismatch", expected=st.to,
                actual=out.world.cur,
            )
        if st.rs is not None and out.fp is not None:
            actual_fp = (tuple(sorted(out.fp.rs)),
                         tuple(sorted(out.fp.ws)))
            if (st.rs, st.ws) != actual_fp:
                raise ReplayDivergence(
                    n, "footprint mismatch",
                    expected=(st.rs, st.ws), actual=actual_fp,
                )
        world = out.world
        visited.append(world)
    return ReplayResult(world, "state", visited)


def replay_witness(ctx, record, semantics=None):
    """Replay a witness artifact and re-derive its verdict.

    For a race, the recorded conflicting prediction pair is recomputed
    from scratch at the final world via :func:`repro.semantics.race
    .predict` — the schedule *and* the Race rule application must both
    reproduce. Returns the :class:`ReplayResult`; raises
    :class:`ReplayDivergence` otherwise.
    """
    schedule = record.schedule
    if semantics is None:
        semantics = semantics_for(schedule.semantics)
    result = replay_schedule(ctx, schedule, semantics)
    end = len(schedule.steps)
    if record.verdict == "abort":
        if result.end != "abort":
            raise ReplayDivergence(
                end, "recorded abort did not reproduce",
                expected="abort", actual=result.end,
            )
    elif record.verdict == "race":
        if result.end != "state":
            raise ReplayDivergence(
                end, "schedule ended in {!r}, not at a racy "
                "world".format(result.end),
            )
        _verify_race(ctx, semantics, record, result.world, end)
    else:
        raise ReplayDivergence(
            end, "unknown verdict", actual=record.verdict
        )
    if obs.enabled:
        obs.inc("replay.verified")
    return result


def _verify_race(ctx, semantics, record, world, step):
    race = record.race or {}
    quantum = isinstance(semantics, NonPreemptiveSemantics)
    max_atomic = record.meta.get("max_atomic_steps", 64)
    for side in ("1", "2"):
        tid = race.get("tid" + side)
        fp = Footprint(race.get("rs" + side, ()),
                       race.get("ws" + side, ()))
        bit = race.get("bit" + side, 0)
        preds = predict(
            ctx, world, tid, max_atomic_steps=max_atomic,
            quantum=quantum,
        )
        if (fp, bit) not in preds:
            raise ReplayDivergence(
                step,
                "prediction of thread {} not reproduced at the final "
                "world".format(tid),
                expected=(fp, bit),
                actual=sorted(preds, key=repr),
            )
    fp1 = Footprint(race.get("rs1", ()), race.get("ws1", ()))
    fp2 = Footprint(race.get("rs2", ()), race.get("ws2", ()))
    if not conflict_atomic(fp1, race.get("bit1", 0),
                           fp2, race.get("bit2", 0)):
        raise ReplayDivergence(
            step, "recorded prediction pair does not conflict",
            actual=(fp1, fp2),
        )


# ----- minimization ---------------------------------------------------------


def _move_of(st):
    """The context-independent essence of a schedule step.

    Successor *indices* shift as soon as any earlier step is removed,
    so candidates are matched on what the step did instead: the acting
    thread, the label kind, the thread scheduled next, the event
    payload, and (for thread steps) the exact footprint addresses —
    address layouts are deterministic per thread, so a surviving step
    keeps its footprint even when removed neighbours change the values
    it reads.
    """
    return (st.tid, st.to, st.kind, st.detail, st.rs, st.ws)


def _match_move(world, outs, move):
    """The successor index realising ``move`` at ``world``, or ``None``."""
    tid, to, kind, detail, rs, ws = move
    if kind != "sw" and world.cur != tid:
        return None
    for i, out in enumerate(outs):
        if isinstance(out, GAbort):
            continue
        if label_kind(out.label) != kind:
            continue
        if out.world.cur != to:
            continue
        if kind == "event" and detail is not None:
            if (out.label.kind, str(out.label.value)) != tuple(detail):
                continue
        if rs is not None and out.fp is not None:
            if (tuple(sorted(out.fp.rs)),
                    tuple(sorted(out.fp.ws))) != (rs, ws):
                continue
        return i
    return None


class _Minimizer:
    """ddmin over a racy schedule's moves, with attempt accounting.

    ``max_rounds``/``deadline`` bound the deletion loop: ddmin on an
    unshrinkable schedule is quadratic in walk attempts, and one
    pathological fuzz finding must not stall a whole campaign. A hit
    bound stops shrinking and keeps the best (still racy, still
    replayable) schedule found so far — bounded minimization degrades
    to *less minimal*, never to *invalid*.
    """

    def __init__(self, ctx, semantics, quantum, max_atomic, init,
                 max_rounds=None, deadline=None, clock=time.monotonic):
        self.ctx = ctx
        self.semantics = semantics
        self.init = init
        self.checker = _RaceChecker(ctx, quantum, max_atomic)
        self.attempts = 0
        self.max_rounds = max_rounds
        self.deadline = deadline
        self.clock = clock
        self.budget_hit = False

    def _exhausted(self, rounds):
        if self.max_rounds is not None and rounds >= self.max_rounds:
            self.budget_hit = True
            return True
        if self.deadline is not None and self.clock() >= self.deadline:
            self.budget_hit = True
            return True
        return False

    def walk(self, moves):
        """Re-walk ``moves``; return the surviving move list or ``None``.

        A walk survives when every move finds a matching successor and
        the Race rule fires at some visited world — the walk is then
        truncated there, which is how suffix shrinking falls out for
        free.
        """
        self.attempts += 1
        world = self.semantics.initial_worlds(self.ctx)[self.init]
        for k, move in enumerate(moves):
            if self.checker(world):
                return list(moves[:k])
            if world.is_done():
                return None
            outs = self.semantics.successors(self.ctx, world)
            i = _match_move(world, outs, move)
            if i is None:
                return None
            world = outs[i].world
        return list(moves) if self.checker(world) else None

    def ddmin(self, moves):
        """Delta-debugging deletion loop: locally 1-minimal result
        (or the best schedule found when a round/deadline budget ran
        out first)."""
        rounds = 0
        granularity = 2
        while len(moves) >= 1 and granularity <= max(len(moves), 1):
            if self._exhausted(rounds):
                break
            rounds += 1
            chunk = max(1, len(moves) // granularity)
            shrunk = False
            start = 0
            while start < len(moves):
                if self.deadline is not None and \
                        self.clock() >= self.deadline:
                    # Mid-round deadline check: one round over a long
                    # schedule is itself O(len/chunk) full re-walks.
                    self.budget_hit = True
                    return moves, rounds
                candidate = moves[:start] + moves[start + chunk:]
                survived = self.walk(candidate)
                if survived is not None:
                    moves = survived
                    granularity = max(granularity - 1, 2)
                    shrunk = True
                    break
                start += chunk
            if not shrunk:
                if chunk == 1:
                    break
                granularity = min(granularity * 2, len(moves))
        return moves, rounds


def minimize_witness(ctx, record, semantics=None, max_rounds=None,
                     max_seconds=None):
    """Shrink a racy witness to a locally minimal racy interleaving.

    Returns a new, replayable :class:`WitnessRecord` (``minimized``
    flag set) whose schedule is never longer than the original's and
    whose final world still satisfies the Race rule; the conflicting
    prediction pair is re-derived at the minimized world. The original
    record is left untouched. Counters: ``witness.minimize.attempts``,
    ``witness.minimize.rounds``, ``witness.minimize.removed_steps``,
    ``witness.minimize.budget_hits``.

    ``max_rounds`` caps ddmin deletion rounds and ``max_seconds`` the
    wall-clock of the whole shrink; hitting either stops early with
    the best schedule found so far (still racy, still replayable, just
    possibly not 1-minimal). The fuzz campaign always passes a budget:
    a single pathological finding must not stall the run.
    """
    if record.verdict != "race":
        raise CaptureError(
            "only race witnesses can be minimized (verdict={!r})".format(
                record.verdict
            )
        )
    schedule = record.schedule
    if semantics is None:
        semantics = semantics_for(schedule.semantics)
    quantum = isinstance(semantics, NonPreemptiveSemantics)
    max_atomic = record.meta.get("max_atomic_steps", 64)
    deadline = (
        None
        if max_seconds is None
        else time.monotonic() + max(float(max_seconds), 0.0)
    )
    with obs.span(
        "witness.minimize", steps=len(schedule.steps)
    ) as sp:
        minimizer = _Minimizer(
            ctx, semantics, quantum, max_atomic, schedule.init,
            max_rounds=max_rounds, deadline=deadline,
        )
        moves = [_move_of(st) for st in schedule.steps]
        baseline = minimizer.walk(moves)
        if baseline is None:
            raise ReplayDivergence(
                -1, "original schedule no longer reaches a racy world"
            )
        moves, rounds = minimizer.ddmin(baseline)
        record_min = _rebuild(ctx, semantics, minimizer, record, moves)
        removed = len(schedule.steps) - len(record_min.schedule.steps)
        if obs.enabled:
            obs.inc("witness.minimize.attempts", minimizer.attempts)
            obs.inc("witness.minimize.rounds", rounds)
            obs.inc("witness.minimize.removed_steps", removed)
            if minimizer.budget_hit:
                obs.inc("witness.minimize.budget_hits")
            sp.set(
                attempts=minimizer.attempts,
                removed=removed,
                final_steps=len(record_min.schedule.steps),
                budget_hit=minimizer.budget_hit,
            )
    return record_min


def _rebuild(ctx, semantics, minimizer, record, moves):
    """Re-capture the minimized walk as an exact index schedule."""
    world = semantics.initial_worlds(ctx)[minimizer.init]
    steps = []
    for move in moves:
        outs = semantics.successors(ctx, world)
        i = _match_move(world, outs, move)
        if i is None:  # pragma: no cover - walk() already validated
            raise ReplayDivergence(
                len(steps), "minimized move no longer enabled",
                expected=move,
            )
        steps.append(_make_step(i, world, outs[i]))
        world = outs[i].world
    checker = _RaceChecker(
        ctx, minimizer.checker.quantum, minimizer.checker.max_atomic_steps
    )
    if not checker(world):  # pragma: no cover - walk() already validated
        raise ReplayDivergence(
            len(steps), "minimized schedule lost the race"
        )
    witness = checker.witness
    race = {
        "tid1": witness.tid1,
        "rs1": sorted(witness.fp1.rs),
        "ws1": sorted(witness.fp1.ws),
        "bit1": witness.bit1,
        "tid2": witness.tid2,
        "rs2": sorted(witness.fp2.rs),
        "ws2": sorted(witness.fp2.ws),
        "bit2": witness.bit2,
    }
    return WitnessRecord(
        "race",
        Schedule(minimizer.init, steps, semantics.name, False),
        race,
        record.program,
        minimized=True,
        meta=record.meta,
    )
