"""Process-parallel frontier-sharded exploration.

The sequential explorer (:mod:`repro.semantics.explore`) is a single
Python process; on the suite's larger workloads the expansion loop is
the cost center of every whole-program property. This module runs the
same reachability computation across ``jobs`` forked worker processes
with a *hash-partitioned frontier*, in the style of classic distributed
model checking (Stern–Dill): every world is **owned** by the worker
whose shard index matches its (incremental, hash-consed) hash —
``hash(world) % jobs`` — so no two workers ever expand the same
full-expansion state, and the dedup table is sharded for free.

* Workers expand the worlds they own with the *identical* successor
  machinery the sequential explorer uses, streaming ``(world, kind,
  edges)`` records back to the coordinator and batching cross-shard
  successors to their owners over **stateful channels**
  (:mod:`repro.common.serialize` — versioned envelope, hash-seed
  probe). Each worker keeps one long-lived
  :class:`~repro.common.serialize.ChannelEncoder` per destination
  shard (plus one for its record stream to the coordinator) and one
  :class:`~repro.common.serialize.ChannelDecoder` per source, so
  hash-consed frames, cores and code containers cross each channel
  once, memories delta-encode against per-channel base caches, and
  the static fork-inherited segment (modules, functions, initial
  worlds — pinned by the coordinator before forking) never crosses at
  all. Channel state is bounded by an epoch protocol: an over-budget
  sender resets its channel and sends a ``reset`` control message
  (FIFO queues order it before the next batch); every data message
  carries its epoch, the receiver re-syncs forward and rejects stale
  epochs. The per-destination ``sent`` memo (which worlds already
  crossed) lives on the encoder and is dropped by the same resets, so
  nothing about a channel grows without bound.
* The coordinator merges the per-shard records into one
  :class:`~repro.semantics.explore.StateGraph` by a **deterministic
  canonical BFS** from the initial worlds in recorded successor-list
  order. Without reduction this replays exactly the traversal
  ``_explore_full`` performs, so the merged graph is *identical* —
  same state numbering, edge lists, ``done``/``stuck`` sets — and
  behaviour sets, race verdicts and state fingerprints match the
  sequential explorer's by construction, not just extensionally.
* **POR composes** (design: worker-local region DFS). Ample decisions
  are per-world (:meth:`repro.semantics.por.AmpleReducer.decide` needs
  no cross-shard state); a worker descends ample successors *locally*
  in a DFS with the on-stack cycle proviso and only hash-routes
  full-expansion successors. Soundness of the proviso: for a merged
  all-ample cycle, every worker that recorded one of its states must
  have recorded (and locally descended) all of them — the merge
  prefers ``full`` records over ``ample`` — so the standard
  single-DFS back-edge argument applies within that worker, a
  contradiction. Regions reachable from several shards are expanded
  at most once per worker (≤ ``jobs`` duplicates), which is the price
  of coordination-free ample decisions.
* **Fused race detection composes.** Each worker runs its own
  :class:`~repro.semantics.race._RaceChecker` (observer closures
  cannot cross the process boundary); the first witness reaching the
  coordinator broadcasts a halt to all workers, and witness capture
  (:mod:`repro.semantics.witness`) re-walks the merged graph under
  the full semantics exactly as in the sequential path. The race
  *verdict* is deterministic; which witness is reported first is not
  (the sequential explorer's witness choice is a schedule artifact
  too).

Differences from the sequential explorer, by design:

* ``max_states`` bounds the number of *expansions* through a shared
  counter instead of the discovered-state count. Without reduction
  the truncation condition is the same (truncate iff the reachable
  set exceeds the bound); under POR, duplicate region expansions can
  consume budget faster. A world cut by the bound is recorded as
  truncated *itself* (the sequential explorer marks the parent), so
  ``cut`` behaviours still appear at the boundary.
* **Observability composes across the fork.** Each worker resets the
  inherited obs state (the parent's sinks must not be written from
  two processes), then re-enables a *private* registry when the
  parent collects metrics and a *per-worker* trace file
  (``<trace>.w<wid>``, every record stamped with a ``wid`` attr) when
  the parent traces to a path — concurrent workers can never
  interleave JSONL lines into one file. Workers meter their own
  phases (``parallel.worker.{expand,encode,decode,idle,wall}_seconds``
  histograms), wire costs (``parallel.wire.*`` bytes, batch-size and
  per-world-size histograms, send-memo hit rate) and everything the
  shared engine instrumentation records, and ship their **entire**
  metrics snapshot to the coordinator in the ``bye`` message; the
  coordinator folds the dumps in generically
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge` — counters add,
  gauges max, histograms merge), so a new worker-side metric needs no
  coordinator change. Coordinator-side costs surface as the
  ``parallel.merge`` span and the ``parallel.merge_seconds`` /
  ``parallel.idle_seconds`` gauges (durations are gauges, not
  integer-minded counters).

Workers are **forked**, never spawned: the string-hash seed is
inherited, which is what makes ``hash(world) % jobs`` agree across
processes (the serialize envelope's seed probe double-checks this).
Platforms without ``fork`` fall back to the sequential explorer.

Termination uses cumulative message counters (a Mattern-style
four-counter scheme): a worker going idle reports how many batches it
has sent to each peer and received in total; the coordinator halts
when every worker's latest report is idle and, for every shard, the
batches sent to it (by the coordinator's seeding plus all peers)
equal the batches it has received.
"""

import multiprocessing
import os
import time
import traceback
from collections import deque
from queue import Empty

from repro import obs
from repro.obs import heap as _heap
from repro.obs import status as _status
from repro.common.serialize import (
    ENV_STATELESS,
    ChannelDecoder,
    ChannelEncoder,
    clear_static_table,
    collect_static_objects,
    install_static_table,
)
from repro.semantics.engine import GAbort
from repro.semantics.explore import (
    ABORT_DST,
    Behaviour,
    ExplorationLimit,
    StateGraph,
)
from repro.semantics.nonpreemptive import NonPreemptiveSemantics
from repro.semantics.por import AmpleReducer
from repro.semantics.race import RaceWitness, _RaceChecker
from repro.lang import closure
from repro.semantics.world import reset_intern_tables

#: Environment variable the CLI's ``--jobs`` defaults from.
ENV_JOBS = "REPRO_JOBS"

#: Cross-shard worlds per batch message.
_BATCH_WORLDS = 128

#: Expansion records per flush to the coordinator.
_REC_BATCH = 256

#: Coordinator receive timeout (liveness check cadence), seconds.
#: With a heartbeat active the coordinator shortens this to the beat
#: interval so shard merges stay fresh.
_GET_TIMEOUT = 15.0

#: After a halt broadcast: how long a worker may go without either
#: sending its bye or advancing the shared state counter before the
#: coordinator declares it wedged and terminates it. Generous — the
#: only post-halt work is flushing records — but finite: a worker
#: stuck on a torn queue message must fail the run loudly, not hang
#: it forever.
_HALT_GRACE = 30.0

#: How long an exiting worker keeps draining its own inbox after its
#: bye, so peers' queue feeder threads can finish in-flight writes
#: (see ``_drain_inbox``).
_EXIT_DRAIN = 1.0

#: Worker-loop iterations between heartbeat clock checks (mirrors
#: ``explore._HB_STRIDE``).
_HB_STRIDE = 64

# Record kinds. Ranked so the merge can prefer the more-expanded
# record when duplicate POR regions meet: a full expansion beats an
# ample one (which is what keeps the cycle proviso intact after the
# merge), and anything beats a budget cut.
_FULL = "full"
_AMPLE = "ample"
_DONE = "done"
_STUCK = "stuck"
_CUT = "cut"
_RANK = {_CUT: 0, _AMPLE: 1, _FULL: 2, _DONE: 2, _STUCK: 2}


def available():
    """True iff the platform can fork workers (see module docstring)."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_jobs(environ=None):
    """The ``REPRO_JOBS`` default for the CLI's ``--jobs`` (min 1)."""
    env = os.environ if environ is None else environ
    value = env.get(ENV_JOBS)
    if value is None:
        return 1
    try:
        n = int(value.strip())
    except ValueError:
        return 1
    return max(1, n)


class _Limit(Exception):
    """Worker-internal: the shared expansion budget is exhausted."""


class _Budget:
    """Shared expansion budget (one unit per recorded expansion).

    Chunk size 1: a worker never holds unused budget, so without
    reduction the truncation condition coincides exactly with the
    sequential explorer's (truncate iff reachable > ``max_states``).
    """

    __slots__ = ("counter", "limit")

    def __init__(self, counter, limit):
        self.counter = counter
        self.limit = limit

    def take(self):
        counter = self.counter
        with counter.get_lock():
            if counter.value >= self.limit:
                return False
            counter.value += 1
        return True


class _Worker:
    """One shard: owns the worlds hashing to its index and expands them."""

    def __init__(self, wid, jobs, ctx, semantics, cfg, counter, inboxes,
                 coord_q):
        self.wid = wid
        self.jobs = jobs
        self.ctx = ctx
        self.semantics = semantics
        self.successors = semantics.successors
        self.use_por = cfg["use_por"]
        self.strict = cfg["strict"]
        self.max_states = cfg["max_states"]
        self.budget = _Budget(counter, cfg["max_states"])
        self.inboxes = inboxes
        self.coord_q = coord_q
        self.reducer = AmpleReducer() if self.use_por else None
        race = cfg["race"]
        if race is None:
            self.checker = None
        else:
            quantum, max_atomic_steps = race
            self.checker = _RaceChecker(ctx, quantum, max_atomic_steps)
            # Workers run with obs disabled; keep the checker's plain
            # accounting on so the coordinator can publish the sums.
            self.checker.track = True
        self.recorded = set()
        self.pending = deque()
        self.pending_set = set()
        self.outboxes = [[] for _ in range(jobs)]
        # One stateful channel per destination shard (the one indexed
        # by our own wid stays idle), one for the record stream to the
        # coordinator, and one decoder per source (created lazily;
        # src -1 is the coordinator's seed batch).
        self.channels = [ChannelEncoder() for _ in range(jobs)]
        self.rec_channel = ChannelEncoder()
        self.decoders = {}
        self.recs = []
        self.sent = [0] * jobs
        self.recv = 0
        self.halted = False
        self.racing = False
        self.idle_seconds = 0.0
        self.cross_worlds = 0
        self.batches_out = 0
        # Phase/wire accounting. ``timed`` hoists the obs check once:
        # with observability off the loop must stay clock-read free.
        self.timed = obs.enabled
        self.expand_seconds = 0.0
        self.encode_seconds = 0.0
        self.decode_seconds = 0.0
        # Stage every module before the first expansion, so closure
        # compilation shows up as its own phase instead of being
        # booked against the first expand tick of each shard (no-op
        # when compilation is off). Refresh the hoisted gate first —
        # the context was built in the parent, possibly before the
        # CLI override or env var was in force.
        ctx.staging = closure.enabled()
        t0 = time.monotonic()
        closure.prime(ctx)
        self.compile_seconds = time.monotonic() - t0
        self.bytes_out = 0
        self.bytes_in = 0
        self.rec_bytes = 0
        self.memo_hits = 0
        self.memo_sends = 0

    # -- plumbing ----------------------------------------------------

    def record(self, world, kind, edges):
        self.recorded.add(world)
        self.recs.append((world, kind, edges))
        if len(self.recs) >= _REC_BATCH:
            self.flush_recs()

    def flush_recs(self):
        if not self.recs:
            return
        # The coordinator never sends back, so no reset control
        # message is needed here: the epoch riding on the next batch
        # triggers the implicit decoder reset.
        ch = self.rec_channel
        if ch.over_budget():
            ch.reset()
        # The encode window covers the queue put too: handing the
        # batch to the feeder thread is part of shipping it.
        if self.timed:
            t0 = time.monotonic()
            epoch, data = ch.encode(self.recs)
            self.rec_bytes += len(data)
            self.coord_q.put(("rec", self.wid, epoch, data))
            self.encode_seconds += time.monotonic() - t0
        else:
            epoch, data = ch.encode(self.recs)
            self.coord_q.put(("rec", self.wid, epoch, data))
        self.recs = []

    def flush_box(self, shard):
        box = self.outboxes[shard]
        if not box:
            return
        ch = self.channels[shard]
        if ch.over_budget():
            # Bound the channel: drop the pickler memo, base cache and
            # send memo, and tell the receiver before the next batch
            # (the FIFO queue orders the reset ahead of it). The memo
            # for this box's worlds is gone, so re-mark them sent.
            ch.reset()
            self.inboxes[shard].put(("reset", self.wid, ch.epoch))
            ch.sent.update(box)
        if self.timed:
            t0 = time.monotonic()
            epoch, data = ch.encode_worlds(box)
            self.bytes_out += len(data)
            obs.observe("parallel.wire.batch_worlds", len(box))
            obs.observe("parallel.wire.batch_bytes", len(data))
            obs.observe(
                "parallel.wire.world_bytes", len(data) / len(box)
            )
            self.inboxes[shard].put(("w", self.wid, epoch, data))
            self.encode_seconds += time.monotonic() - t0
        else:
            epoch, data = ch.encode_worlds(box)
            self.inboxes[shard].put(("w", self.wid, epoch, data))
        self.sent[shard] += 1
        self.batches_out += 1
        self.cross_worlds += len(box)
        self.outboxes[shard] = []

    def flush_boxes(self):
        for shard in range(self.jobs):
            self.flush_box(shard)

    def enqueue_local(self, world):
        if world not in self.recorded and world not in self.pending_set:
            self.pending_set.add(world)
            self.pending.append(world)

    def route(self, world):
        """Send a full-expansion successor to its owner (or queue it)."""
        shard = hash(world) % self.jobs
        if shard == self.wid:
            self.enqueue_local(world)
            return
        cache = self.channels[shard].sent
        if world in cache:
            # The send memo: this world already crossed to that shard,
            # so the envelope (encode + enqueue + decode) is saved.
            # Lives on the channel — a reset drops it with the rest.
            self.memo_hits += 1
            return
        cache.add(world)
        self.memo_sends += 1
        box = self.outboxes[shard]
        box.append(world)
        if len(box) >= _BATCH_WORLDS:
            self.flush_box(shard)

    def charge(self):
        if self.budget.take():
            return True
        if self.strict:
            raise _Limit(
                "state bound {} exceeded".format(self.max_states)
            )
        return False

    def report_race(self):
        witness = self.checker.witness
        self.flush_recs()
        payload = (
            witness.world, witness.tid1, witness.fp1, witness.bit1,
            witness.tid2, witness.fp2, witness.bit2,
        )
        # Same channel as the records: the coordinator decodes both
        # message kinds through its per-worker record decoder.
        epoch, data = self.rec_channel.encode(payload)
        self.coord_q.put(("race", self.wid, epoch, data))
        self.racing = True

    # -- the loop ----------------------------------------------------

    def decoder(self, src):
        """The stateful decoder mirroring ``src``'s encoder for us
        (``src == -1``: the coordinator's seed channel)."""
        dec = self.decoders.get(src)
        if dec is None:
            dec = self.decoders[src] = ChannelDecoder()
        return dec

    def handle(self, msg):
        kind = msg[0]
        if kind == "w":
            self.recv += 1
            src, epoch, data = msg[1], msg[2], msg[3]
            # The decode window covers the dedup/enqueue of the
            # decoded worlds: unpacking a batch isn't done until its
            # worlds are in the pending queue.
            if self.timed:
                t0 = time.monotonic()
                worlds = self.decoder(src).decode(epoch, data)
                for world in worlds:
                    self.enqueue_local(world)
                self.decode_seconds += time.monotonic() - t0
                self.bytes_in += len(data)
            else:
                worlds = self.decoder(src).decode(epoch, data)
                for world in worlds:
                    self.enqueue_local(world)
        elif kind == "reset":
            # Control message, uncounted on both ends (the Mattern
            # balance tracks data batches only): the sender reset its
            # channel; drop our mirror state before its next batch.
            self.decoder(msg[1]).reset_to(msg[2])
        elif kind == "halt":
            # Outboxes are dropped (nobody will drain them); records
            # must flow — the witness path is rebuilt from them.
            self.flush_recs()
            self.halted = True

    def _idle_get(self, inbox, hb):
        """Blocking receive that keeps the shard heartbeat alive.

        Without a heartbeat this is a plain ``get()``. With one, the
        wait wakes once per beat interval to stamp ``phase: idle`` —
        an idle shard and a dead shard must look different to
        ``repro status``.
        """
        if hb is None:
            return inbox.get()
        while True:
            try:
                msg = inbox.get(timeout=max(hb.interval, 0.05))
            except Empty:
                hb.force(
                    states=len(self.recorded), frontier=0,
                    phase="idle",
                )
                continue
            hb.update(phase="expand")
            return msg

    def run(self):
        inbox = self.inboxes[self.wid]
        timed = self.timed
        hb = _status.writer
        if hb is not None:
            hb.update(phase="expand", jobs=self.jobs)
        hb_left = _HB_STRIDE if hb is not None else -1
        while not self.halted:
            hb_left -= 1
            if hb_left == 0:
                hb_left = _HB_STRIDE
                hb.beat(
                    states=len(self.recorded),
                    frontier=len(self.pending),
                )
            while True:
                # The poll itself is decode time: checking for
                # incoming batches is part of receiving them, and one
                # poll per expansion adds up over large runs.
                if timed:
                    t0 = time.monotonic()
                    try:
                        msg = inbox.get_nowait()
                    except Empty:
                        self.decode_seconds += time.monotonic() - t0
                        break
                    self.decode_seconds += time.monotonic() - t0
                else:
                    try:
                        msg = inbox.get_nowait()
                    except Empty:
                        break
                self.handle(msg)
                if self.halted:
                    return
            if self.pending and not self.racing:
                world = self.pending.popleft()
                self.pending_set.discard(world)
                if self.timed:
                    # Expansion time excludes the encodes it triggers
                    # (full outboxes flush mid-expansion), so the
                    # expand/encode phases stay disjoint and sum
                    # cleanly against wall-clock.
                    t0 = time.monotonic()
                    enc0 = self.encode_seconds
                    self.expand(world)
                    self.expand_seconds += (
                        time.monotonic() - t0
                        - (self.encode_seconds - enc0)
                    )
                else:
                    self.expand(world)
                continue
            # Idle: flush everything first so the counters reported
            # below cover every batch actually handed to a queue.
            self.flush_boxes()
            self.flush_recs()
            # Announcing idleness to the coordinator is idle time.
            t0 = time.monotonic()
            self.coord_q.put(
                ("idle", self.wid, tuple(self.sent), self.recv)
            )
            if self.timed:
                # The blocking wait as a span: the profiler's
                # utilization timeline is built from these intervals.
                with obs.span("parallel.worker.idle"):
                    msg = self._idle_get(inbox, hb)
            else:
                msg = self._idle_get(inbox, hb)
            self.idle_seconds += time.monotonic() - t0
            self.handle(msg)

    def expand(self, world):
        if world in self.recorded:
            return
        if self.use_por:
            self.expand_reduced(world)
        else:
            self.expand_full(world)

    def expand_full(self, world):
        """Mirror of ``_explore_full``'s per-state work, routed."""
        if not self.charge():
            self.record(world, _CUT, ())
            return
        if world.is_done():
            self.record(world, _DONE, ())
            return
        if self.checker is not None and self.checker(world, None):
            self.report_race()
            return
        outs = self.successors(self.ctx, world)
        if not outs:
            self.record(world, _STUCK, ())
            return
        edges = []
        for out in outs:
            if isinstance(out, GAbort):
                edges.append((Behaviour.ABORT, None))
                continue
            edges.append((out.label, out.world))
            self.route(out.world)
        self.record(world, _FULL, edges)

    def expand_reduced(self, seed):
        """Region DFS: ample successors stay local (cycle proviso per
        worker — see the module docstring for the soundness argument);
        full-expansion successors are hash-routed to their owners."""
        decide = self.reducer.decide
        on_stack = set()
        stack = [[seed, None]]
        while stack:
            entry = stack[-1]
            world = entry[0]
            it = entry[1]
            if it is not None:
                nxt = next(it, None)
                if nxt is None:
                    on_stack.discard(world)
                    stack.pop()
                elif nxt not in self.recorded:
                    stack.append([nxt, None])
                continue
            if world in self.recorded:
                stack.pop()
                continue
            if not self.charge():
                self.record(world, _CUT, ())
                stack.pop()
                continue
            if world.is_done():
                self.record(world, _DONE, ())
                stack.pop()
                continue
            on_stack.add(world)
            outs, results, ample = decide(self.ctx, world)
            if self.checker is not None and self.checker(world, outs):
                self.report_race()
                return
            if ample:
                dests = []
                for res in results:
                    if res.world in on_stack:
                        # Cycle proviso (C3): this reduction would
                        # close a cycle of reduced states.
                        ample = False
                        self.reducer.proviso_expansions += 1
                        break
                    dests.append(res.world)
            if ample:
                pruned = len(world.live_threads()) - 1
                if pruned > 0:
                    self.reducer.ample_worlds += 1
                    self.reducer.steps_avoided += pruned
                else:
                    self.reducer.full_expansions += 1
                self.record(
                    world, _AMPLE, tuple((None, d) for d in dests)
                )
                entry[1] = iter(dests)
                continue
            self.reducer.full_expansions += 1
            outs_full = self.successors(
                self.ctx, world, outs, thread_results=results
            )
            if not outs_full:
                self.record(world, _STUCK, ())
                on_stack.discard(world)
                stack.pop()
                continue
            edges = []
            for out in outs_full:
                if isinstance(out, GAbort):
                    edges.append((Behaviour.ABORT, None))
                    continue
                edges.append((out.label, out.world))
                self.route(out.world)
            self.record(world, _FULL, edges)
            on_stack.discard(world)
            stack.pop()

    def wire_stats(self):
        """Delta-transport totals summed over this worker's encoders
        (per-shard channels plus the record channel)."""
        chans = self.channels + [self.rec_channel]
        return {
            "delta_hits": sum(c.delta_hits for c in chans),
            "full_sends": sum(c.full_sends for c in chans),
            "base_registrations": sum(
                c.base_registrations for c in chans
            ),
            "channel_resets": sum(c.resets for c in chans),
        }

    def stats(self):
        out = {
            "states": len(self.recorded),
            "cross_worlds": self.cross_worlds,
            "batches": self.batches_out,
            "idle_seconds": round(self.idle_seconds, 6),
            "compile_seconds": round(self.compile_seconds, 6),
            "expand_seconds": round(self.expand_seconds, 6),
            "encode_seconds": round(self.encode_seconds, 6),
            "decode_seconds": round(self.decode_seconds, 6),
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "rec_bytes": self.rec_bytes,
            "memo_hits": self.memo_hits,
            "memo_sends": self.memo_sends,
        }
        out.update(self.wire_stats())
        if self.reducer is not None:
            out["ample_worlds"] = self.reducer.ample_worlds
            out["full_expansions"] = self.reducer.full_expansions
            out["proviso_expansions"] = self.reducer.proviso_expansions
            out["steps_avoided"] = self.reducer.steps_avoided
        if self.checker is not None:
            out["race_worlds_checked"] = self.checker.worlds_checked
            out["race_predictions"] = self.checker.predictions
            out["race_pairs_checked"] = self.checker.pairs_checked
            out["race_memo_hits"] = self.checker._memo_hits
        return out

    def publish_metrics(self, wall_seconds):
        """Record this worker's complete accounting in its *own*
        registry; the coordinator absorbs the resulting dump through
        the generic merge, so everything here (and anything the shared
        engine instrumentation recorded while expanding) surfaces in
        the parent without per-counter plumbing."""
        if not obs.metrics_enabled():
            return
        obs.inc("parallel.batches", self.batches_out)
        obs.inc("parallel.cross_edges", self.cross_worlds)
        obs.inc("parallel.worker.states", len(self.recorded))
        obs.inc("parallel.wire.bytes_out", self.bytes_out)
        obs.inc("parallel.wire.bytes_in", self.bytes_in)
        obs.inc("parallel.wire.rec_bytes", self.rec_bytes)
        obs.inc("parallel.wire.memo_hits", self.memo_hits)
        obs.inc("parallel.wire.memo_sends", self.memo_sends)
        for key, value in self.wire_stats().items():
            obs.inc("parallel.wire.{}".format(key), value)
        obs.observe("parallel.worker.wall_seconds", wall_seconds)
        obs.observe(
            "parallel.worker.compile_seconds", self.compile_seconds
        )
        obs.observe(
            "parallel.worker.expand_seconds", self.expand_seconds
        )
        obs.observe(
            "parallel.worker.encode_seconds", self.encode_seconds
        )
        obs.observe(
            "parallel.worker.decode_seconds", self.decode_seconds
        )
        obs.observe("parallel.worker.idle_seconds", self.idle_seconds)
        if self.reducer is not None:
            obs.inc("por.ample_worlds", self.reducer.ample_worlds)
            obs.inc(
                "por.full_expansions", self.reducer.full_expansions
            )
            obs.inc(
                "por.proviso_expansions",
                self.reducer.proviso_expansions,
            )
            obs.inc("por.steps_avoided", self.reducer.steps_avoided)
        if self.checker is not None:
            obs.inc(
                "race.worlds_checked", self.checker.worlds_checked
            )
            obs.inc("race.predictions", self.checker.predictions)
            obs.inc("race.pairs_checked", self.checker.pairs_checked)
            obs.inc(
                "race.prediction_memo_hits", self.checker._memo_hits
            )

    def phases(self):
        """The per-shard phase/wire numbers, for the trace event the
        profiler's phase-breakdown table is built from."""
        out = {
            "compile_seconds": round(self.compile_seconds, 6),
            "expand_seconds": round(self.expand_seconds, 6),
            "encode_seconds": round(self.encode_seconds, 6),
            "decode_seconds": round(self.decode_seconds, 6),
            "idle_seconds": round(self.idle_seconds, 6),
            "states": len(self.recorded),
            "batches": self.batches_out,
            "cross_worlds": self.cross_worlds,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "rec_bytes": self.rec_bytes,
            "memo_hits": self.memo_hits,
            "memo_sends": self.memo_sends,
        }
        out.update(self.wire_stats())
        return out


def _configure_worker_obs(wid, cfg):
    """Reset fork-inherited obs state, then re-enable private sinks.

    The fork inherited the parent's obs state; its sinks (trace file
    descriptors, the metrics registry) belong to the parent process.
    Reset, then re-enable a *private* registry when the parent
    collects metrics, and a *per-worker* trace file when the parent
    traces to a path — never the parent's sink. An unwritable worker
    trace must not kill the search — and must not silently discard the
    worker's *metrics* with it: retry with the trace disabled so the
    worker stays metered, and warn once.
    """
    obs.reset()
    # Same fork rule for the heartbeat: the inherited parent writer
    # points at the main status file; replace it with this shard's own
    # ``FILE.w<wid>`` writer (the coordinator merges the shard files).
    _status.reset()
    status_path = cfg.get("status_path")
    if status_path:
        _status.configure(
            _status.shard_path(status_path, wid),
            interval=cfg.get("status_interval"),
            wid=wid,
        )
    trace_path = cfg.get("trace_path")
    if trace_path:
        trace_path = "{}.w{}".format(trace_path, wid)
    metrics = cfg.get("metrics", False)
    if not (metrics or trace_path):
        return
    try:
        obs.configure(
            metrics=metrics,
            trace=trace_path,
            trace_base_attrs={"wid": wid},
        )
    except OSError as exc:
        obs.reset()
        if metrics:
            obs.configure(metrics=True)
        obs.warn(
            "worker {} trace file {!r} is unwritable ({}); continuing "
            "metered, without a trace".format(wid, trace_path, exc),
            wid=wid,
        )


def _drain_inbox(inbox, deadline):
    """Keep reading (and discarding) the inbox until it goes quiet.

    An exiting worker must not stop reading the instant it halts:
    peers' queue feeder threads may still be mid-write into this pipe
    (uncounted reset control messages, or batches dropped by a
    race/err halt), and a process exit on the *writer* side kills its
    feeder mid-message — leaving a torn record that would block this
    reader's next ``recv`` forever. Draining until the pipe is quiet
    lets those feeders complete, so nobody ever tears a message into a
    live reader. Bounded by ``deadline`` as a backstop; a torn message
    already in the pipe surfaces as a blocked ``get`` that the
    coordinator's post-halt watchdog resolves by terminating us.
    """
    while time.monotonic() < deadline:
        try:
            inbox.get(timeout=0.05)
        except Empty:
            return
        except (OSError, EOFError, ValueError):
            return


def _worker_main(wid, jobs, ctx, semantics, cfg, counter, inboxes,
                 coord_q):
    _configure_worker_obs(wid, cfg)
    t0 = time.monotonic()
    worker = _Worker(
        wid, jobs, ctx, semantics, cfg, counter, inboxes, coord_q
    )
    with obs.span("parallel.worker.run", wid=wid):
        try:
            worker.run()
        except _Limit as exc:
            coord_q.put(("err", wid, ("limit", str(exc))))
        except BaseException:
            coord_q.put(
                ("err", wid, ("crash", traceback.format_exc()))
            )
    stats = worker.stats()
    stats["wall_seconds"] = round(time.monotonic() - t0, 6)
    worker.publish_metrics(stats["wall_seconds"])
    if obs.trace_enabled():
        obs.event(
            "parallel.worker.phases",
            wall_seconds=stats["wall_seconds"],
            **worker.phases()
        )
    metrics_dump = obs.dump()
    if metrics_dump is not None:
        stats["metrics"] = metrics_dump
    # Final shard beat before the bye: the merged status must show this
    # worker's full state count and ``phase: done``, not a stale beat.
    if _status.writer is not None:
        _status.writer.force(
            states=len(worker.recorded), frontier=0
        )
    _status.finalize()
    coord_q.put(("bye", wid, stats))
    # Stay a reader a moment longer so peers' in-flight queue writes
    # complete instead of tearing (see ``_drain_inbox``).
    _drain_inbox(inboxes[wid], time.monotonic() + _EXIT_DRAIN)
    # Flush and close the per-worker sinks before the queues wind down.
    obs.shutdown()
    # Exit must not block on feeder threads draining batches into
    # queues of peers that have already halted; the coordinator queue
    # is NOT cancelled — the bye above has to arrive.
    for shard in range(jobs):
        if shard != wid:
            inboxes[shard].cancel_join_thread()


def _merge_record(records, world, kind, edges):
    old = records.get(world)
    if old is not None and _RANK[old[0]] >= _RANK[kind]:
        return
    records[world] = (kind, edges)


def _merge_graph(initial, records):
    """Canonical BFS over the merged records (see module docstring:
    without reduction this replays ``_explore_full`` exactly)."""
    graph = StateGraph()
    queue = deque()
    for world in initial:
        sid = graph.intern(world)
        graph.initial.append(sid)
        queue.append(sid)
    while queue:
        sid = queue.popleft()
        if sid in graph.edges:
            continue
        rec = records.get(graph.states[sid])
        if rec is None:
            # Unexpanded frontier world of an early halt; the
            # sequential halted graph leaves these edge-less too.
            continue
        kind, edges = rec
        if kind == _DONE:
            graph.done.add(sid)
            graph.edges[sid] = []
            continue
        if kind == _STUCK:
            graph.stuck.add(sid)
            graph.edges[sid] = []
            continue
        if kind == _CUT:
            graph.truncated.add(sid)
            graph.edges[sid] = []
            continue
        out = []
        for label, dst in edges:
            if dst is None:
                out.append((Behaviour.ABORT, ABORT_DST))
                continue
            dsid = graph.ids.get(dst)
            if dsid is None:
                dsid = graph.add(dst)
                queue.append(dsid)
            out.append((label, dsid))
        graph.edges[sid] = out
    return graph


def _run_parallel(ctx, semantics, jobs, max_states, strict, use_por,
                  race_cfg):
    """Coordinator: fork workers, seed shards, merge, terminate."""
    # Start from empty intern tables: worlds interned by a previous
    # run in this process — in particular a stateless-decode run whose
    # memories were rebuilt around private base dicts — would
    # otherwise become this run's canonical representatives and defeat
    # the wire encoder's id-matched delta cache (see
    # ``reset_intern_tables``). Must happen before
    # ``initial_worlds``, which interns.
    reset_intern_tables()
    mp_ctx = multiprocessing.get_context("fork")
    inboxes = [mp_ctx.Queue() for _ in range(jobs)]
    coord_q = mp_ctx.Queue()
    counter = mp_ctx.Value("l", 0)
    cfg = {
        "use_por": use_por,
        "strict": strict,
        "max_states": max_states,
        "race": race_cfg,
        # Worker-side observability: a private registry when the
        # parent meters, per-worker trace files when it traces to a
        # path (file-like sinks cannot be suffixed — workers then run
        # untraced).
        "metrics": obs.metrics_enabled(),
        "trace_path": obs.trace_path,
        # Heartbeat: workers derive their shard file from the main
        # status path (None when no heartbeat is active).
        "status_path": (
            _status.writer.path if _status.writer is not None else None
        ),
        "status_interval": (
            _status.writer.interval
            if _status.writer is not None
            else None
        ),
    }
    if obs.tracer is not None:
        # Empty the sink's userspace buffer before forking: children
        # inherit it, and a child GC-ing its copy would flush the same
        # bytes again into the shared descriptor (torn/duplicate JSONL
        # lines in the parent's trace).
        obs.tracer.flush()
    # The static segment must exist *before* forking: every worker
    # inherits the same table and resolves static refs against its own
    # pointer-identical copy. Stateless mode (the benchmark's "before"
    # baseline) runs without one.
    initial = list(semantics.initial_worlds(ctx))
    if os.environ.get(ENV_STATELESS):
        static_count = 0
    else:
        static_count = install_static_table(
            collect_static_objects(ctx, initial)
        )
    try:
        return _run_forked(
            ctx, semantics, jobs, max_states, mp_ctx, inboxes,
            coord_q, counter, cfg, initial, static_count,
        )
    finally:
        clear_static_table()


def _run_forked(ctx, semantics, jobs, max_states, mp_ctx,
                inboxes, coord_q, counter, cfg, initial, static_count):
    procs = []
    for wid in range(jobs):
        p = mp_ctx.Process(
            target=_worker_main,
            args=(wid, jobs, ctx, semantics, cfg, counter, inboxes,
                  coord_q),
            daemon=True,
        )
        p.start()
        procs.append(p)

    coord_sent = [0] * jobs
    seeds = [[] for _ in range(jobs)]
    for world in initial:
        seeds[hash(world) % jobs].append(world)
    for shard, worlds in enumerate(seeds):
        if worlds:
            # One-shot channel per shard: each worker's src -1 decoder
            # sees exactly one message from exactly one fresh encoder.
            epoch, data = ChannelEncoder().encode(worlds)
            inboxes[shard].put(("w", -1, epoch, data))
            coord_sent[shard] += 1

    # Stateful record decoders, one per worker (the mirror of each
    # worker's rec_channel; race payloads ride the same channel).
    rec_decoders = {}

    def rec_decoder(wid):
        dec = rec_decoders.get(wid)
        if dec is None:
            dec = rec_decoders[wid] = ChannelDecoder()
        return dec

    records = {}
    reports = {}
    byes = {}
    race_payload = None
    error = None
    halted = [False]
    track = obs.enabled
    coord_decode = 0.0

    # Post-halt watchdog state: when the halt went out, and the shared
    # state counter's value the last time it moved (progress resets
    # the grace clock — a worker legitimately finishing a long POR
    # region after a race halt must not be shot mid-flush).
    halt_watch = {"t": None, "count": None}

    def broadcast_halt():
        if not halted[0]:
            halted[0] = True
            halt_watch["t"] = time.monotonic()
            halt_watch["count"] = counter.value
            for q in inboxes:
                q.put(("halt",))

    def reap_wedged():
        """Terminate workers that neither bye nor progress after a
        halt. A worker blocked on a torn queue message (a peer died
        mid-write before the exit-drain discipline existed, or any
        other recv wedge) would otherwise never see the halt, and the
        run would wait for its bye forever."""
        nonlocal error
        if halt_watch["t"] is None:
            return
        current = counter.value
        if current != halt_watch["count"]:
            halt_watch["count"] = current
            halt_watch["t"] = time.monotonic()
            return
        if time.monotonic() - halt_watch["t"] <= _HALT_GRACE:
            return
        wedged = [
            wid for wid, p in enumerate(procs)
            if wid not in byes and p.is_alive()
        ]
        for wid in wedged:
            procs[wid].terminate()
            byes[wid] = None
        if wedged and error is None:
            error = (
                "crash",
                "worker(s) {} unresponsive {}s after halt; "
                "terminated".format(wedged, _HALT_GRACE),
            )

    def balanced():
        if len(reports) < jobs:
            return False
        for j in range(jobs):
            expect = coord_sent[j] + sum(
                reports[i][0][j] for i in range(jobs)
            )
            if reports[j][1] != expect:
                return False
        return True

    hb = _status.writer
    get_timeout = (
        _GET_TIMEOUT
        if hb is None
        else min(_GET_TIMEOUT, max(hb.interval, 0.05))
    )

    def merge_beat(phase="parallel"):
        if hb is not None and hb.due():
            _status.merge_shards(
                hb, jobs,
                alive={
                    wid: p.is_alive() for wid, p in enumerate(procs)
                },
                phase=phase,
            )

    try:
        while len(byes) < jobs:
            merge_beat()
            try:
                msg = coord_q.get(timeout=get_timeout)
            except Empty:
                dead = [
                    wid for wid, p in enumerate(procs)
                    if not p.is_alive() and wid not in byes
                ]
                if dead:
                    if error is None:
                        error = (
                            "crash",
                            "worker(s) {} died without reporting".format(
                                dead
                            ),
                        )
                    for wid in dead:
                        byes[wid] = None
                    broadcast_halt()
                reap_wedged()
                continue
            kind = msg[0]
            if kind == "rec":
                if track:
                    t0 = time.monotonic()
                    batch = rec_decoder(msg[1]).decode(msg[2], msg[3])
                    coord_decode += time.monotonic() - t0
                else:
                    batch = rec_decoder(msg[1]).decode(msg[2], msg[3])
                for world, k, edges in batch:
                    _merge_record(records, world, k, edges)
            elif kind == "race":
                payload = rec_decoder(msg[1]).decode(msg[2], msg[3])
                if race_payload is None:
                    race_payload = payload
                    broadcast_halt()
            elif kind == "idle":
                reports[msg[1]] = (msg[2], msg[3])
                if balanced():
                    broadcast_halt()
            elif kind == "err":
                if error is None:
                    error = msg[2]
                broadcast_halt()
            elif kind == "bye":
                byes[msg[1]] = msg[2]
    finally:
        # Reaping lives in the finally, not after it: a
        # KeyboardInterrupt (or any other exception) escaping the
        # message loop above must still halt, join and — as a last
        # resort — terminate every forked worker. Before this, Ctrl-C
        # propagated past the halt broadcast and leaked live workers
        # to init.
        broadcast_halt()
        for p in procs:
            p.join(timeout=10)
        for p in procs:
            # A worker that survived its join timeout is wedged (e.g.
            # blocked on a torn queue read); it must not outlive the
            # run.
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
        for q in inboxes:
            q.cancel_join_thread()
            q.close()
        coord_q.close()

    if error is not None:
        kind, detail = error
        if kind == "limit":
            raise ExplorationLimit(detail)
        raise RuntimeError(
            "parallel exploration failed: {}".format(detail)
        )

    if track:
        with obs.span("parallel.merge", shards=jobs) as sp:
            t0 = time.monotonic()
            graph = _merge_graph(initial, records)
            merge_seconds = coord_decode + time.monotonic() - t0
            sp.set(
                states=graph.state_count(),
                decode_seconds=round(coord_decode, 6),
            )
    else:
        graph = _merge_graph(initial, records)
        merge_seconds = 0.0
    witness = None
    if race_payload is not None:
        world, t1, fp1, b1, t2, fp2, b2 = race_payload
        witness = RaceWitness(world, t1, fp1, b1, t2, fp2, b2)
        graph.halted = True
        graph.halted_sid = graph.ids.get(world)
    if graph.truncated:
        obs.inc("explore.truncated_states", len(graph.truncated))
        obs.warn(
            "parallel exploration truncated at {} expansions ({} "
            "state(s) cut); behaviours may include 'cut'".format(
                max_states, len(graph.truncated)
            ),
            max_states=max_states,
            truncated=len(graph.truncated),
        )
    stats = [byes.get(wid) or {} for wid in range(jobs)]
    _publish(jobs, coord_sent, stats, graph, merge_seconds,
             static_count)
    if hb is not None:
        # Unconditional final merge: every shard's last (forced) beat
        # plus liveness, then the merged graph's true state count.
        _status.merge_shards(
            hb, jobs,
            alive={wid: p.is_alive() for wid, p in enumerate(procs)},
            phase="merged",
        )
        hb.force(states=graph.state_count(), frontier=0)
    if _heap.enabled():
        # Parent-side census over the merged graph (workers censusing
        # their shards would double-count shared structure).
        _heap.collect(graph)
    return graph, witness, stats


def _publish(jobs, coord_sent, stats, graph, merge_seconds,
             static_count=0):
    """Absorb each worker's complete metrics dump generically and add
    the coordinator-side aggregates.

    The merge (counters add, gauges max, histograms merge) replaces
    the old hand-picked counter relay: ``parallel.batches``,
    ``parallel.cross_edges``, the ``por.*`` / ``race.*`` totals, the
    wire histograms and anything the engine instrumentation recorded
    inside a worker all arrive through ``s["metrics"]`` without being
    named here.
    """
    if not obs.enabled:
        return

    def total(key):
        return sum(s.get(key, 0) for s in stats)

    for s in stats:
        obs.merge_dump(s.get("metrics"))
    obs.inc("parallel.shards", jobs)
    # Seed batches originate at the coordinator; the workers' own
    # batch counts arrived via the merge above.
    obs.inc("parallel.batches", sum(coord_sent))
    obs.inc("explore.states_visited", graph.state_count())
    # Durations are gauges, not counters (counters are integer-minded
    # monotone event counts): total idle across shards, and the
    # coordinator's decode+BFS merge cost.
    obs.set_gauge(
        "parallel.idle_seconds", round(total("idle_seconds"), 6)
    )
    obs.set_gauge("parallel.merge_seconds", round(merge_seconds, 6))
    obs.set_gauge("parallel.wire.static_objects", static_count)
    for wid, s in enumerate(stats):
        with obs.span("parallel.worker", wid=wid) as sp:
            sp.set(**{k: v for k, v in s.items() if k != "metrics"})


def parallel_explore(ctx, semantics, max_states=50000, strict=False,
                     reduce=False, jobs=2):
    """Parallel :func:`~repro.semantics.explore.explore` (no observer).

    ``jobs <= 1`` — or a platform without ``fork`` — falls back to the
    sequential explorer, so callers can pass the user's ``--jobs``
    through unconditionally.
    """
    jobs = int(jobs)
    if jobs <= 1 or not available():
        from repro.semantics.explore import explore

        return explore(
            ctx, semantics, max_states=max_states, strict=strict,
            reduce=reduce,
        )
    use_por = bool(reduce) and getattr(semantics, "supports_por", False)
    with obs.span(
        "parallel.explore",
        jobs=jobs,
        semantics=type(semantics).__name__,
        por=use_por,
    ) as sp:
        graph, _witness, _stats = _run_parallel(
            ctx, semantics, jobs, max_states, strict, use_por, None
        )
        if obs.enabled:
            sp.set(states=graph.state_count())
    return graph


def parallel_find_race(ctx, semantics, max_states=50000,
                       max_atomic_steps=64, reduce=False, jobs=2):
    """Fused parallel race search: ``(witness | None, merged graph)``.

    The caller (:func:`repro.semantics.race.find_race`) owns witness
    capture: the merged graph's recorded edge lists are in successor
    order (ample edges a prefix), so ``capture_schedule`` applies
    unchanged.
    """
    jobs = int(jobs)
    use_por = bool(reduce) and getattr(semantics, "supports_por", False)
    quantum = isinstance(semantics, NonPreemptiveSemantics)
    with obs.span(
        "parallel.find_race",
        jobs=jobs,
        semantics=type(semantics).__name__,
        por=use_por,
    ) as sp:
        graph, witness, _stats = _run_parallel(
            ctx, semantics, jobs, max_states, True, use_por,
            (quantum, max_atomic_steps),
        )
        if obs.enabled:
            sp.set(states=graph.state_count(), racy=witness is not None)
    return witness, graph
