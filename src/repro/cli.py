"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``compile FILE [--dump STAGE] [-O]`` — run the pipeline on a MiniC
  file; print the pass list, or the pretty-printed module at a stage;
* ``run FILE --threads entry1,entry2 [--stage STAGE] [--lock]`` —
  enumerate the behaviours of the program under the preemptive
  semantics (optionally linked against the lock object);
* ``validate FILE [-O] [--max-failures N]`` — translation-validate
  every pass;
* ``drf FILE --threads entry1,entry2 [--lock]`` — race-check; with
  ``--witness-out W`` a found race is written as a replayable witness
  artifact (``--minimize`` shrinks it first);
* ``replay FILE --witness W`` — re-execute a witness against the
  program and verify its verdict reproduces (``--minimize`` /
  ``--witness-out`` shrink and re-save it);
* ``inspect ARTIFACT`` — render a witness as a per-thread timeline,
  or summarize a ``--trace`` JSONL file;
* ``profile TRACE [--metrics-in FILE]`` — decompose where a metered
  run's wall-clock went: per-shard phase breakdown, top spans by
  self-time, utilization timelines, the wire-cost table, and (when the
  run collected them) the heap/interning census (see
  :mod:`repro.obs.profile`);
* ``npdrf FILE --threads e1,e2`` — race-check under the
  *non-preemptive* semantics (the paper's NPDRF);
* ``fuzz --seed S --count N [--out DIR] [--jobs N]`` — run a
  persistent differential fuzzing campaign (see :mod:`repro.fuzz`):
  seeded generators, a content-hash-deduplicated corpus, auto-minimized
  replayable witnesses for every divergence, and an atomically
  checkpointed resume that survives ``kill -9``;
* ``status FILE [--watch]`` — render a live heartbeat file written by
  a running ``run``/``drf``/``npdrf`` with ``--status`` (see
  :mod:`repro.obs.status`);
* ``compare A B [--fail-on-regression]`` — diff two run manifests
  written with ``--ledger`` (see :mod:`repro.obs.ledger`).

All commands accept ``--metrics`` (print a metrics summary table),
``--metrics-out FILE`` (write the final metrics snapshot as JSON) and
``--trace FILE`` (write a JSON-lines span trace); the
``REPRO_METRICS`` / ``REPRO_METRICS_OUT`` / ``REPRO_TRACE``
environment variables switch the same machinery on without flags.
``--metrics-format prom`` switches the printed summary (and ``repro
profile``'s output) from the plain-text table to Prometheus text
exposition. ``--ledger FILE`` (or ``REPRO_LEDGER=FILE``) additionally
writes a versioned run manifest — resolved config, content hash of the
input + pass pipeline, phase wall times, final metrics, behaviour
fingerprint, verdict and exit status — the artifact ``repro compare``
consumes. The exploration commands also take ``--status FILE`` (or
``REPRO_STATUS=FILE``) for a ~1s-interval heartbeat snapshot and
``--heap-profile`` (or ``REPRO_HEAP_PROFILE=1``) for the post-run
heap/interning census plus tracemalloc phase gauges.

``run`` and ``drf`` accept ``--por/--no-por`` to control the
footprint-directed partial-order reduction (default: the ``REPRO_POR``
environment setting, on unless set to ``0``), ``--jobs N`` to
shard the exploration across ``N`` forked worker processes (default:
the ``REPRO_JOBS`` environment setting, 1 = sequential; see
:mod:`repro.semantics.parallel`), and
``--closure-compile/--no-closure-compile`` to control closure
compilation of the step interpreters (default: the ``REPRO_CLOSURE``
environment setting, on unless set to ``0``; see
:mod:`repro.lang.closure`).

Exit codes are uniform across commands: **0** — success (program is
DRF, behaviours printed, validation passed, replay reproduced);
**1** — an analysis *finding* (a race was found, a validation pass
failed, a replay diverged); **2** — usage or internal error (bad
flags, unknown thread entries, unreadable files, crashes);
**130** — interrupted (Ctrl-C / SIGINT), the conventional 128+signal
code, after the run ledger and heartbeat have been finalized and any
forked workers reaped. Scripts can therefore distinguish "the tool
found a race" from "the tool broke" — previously both surfaced as
non-zero.
"""

import argparse
import os
import sys

from repro import obs
from repro.common.serialize import ENV_STATELESS
from repro.lang import closure
from repro.lang.module import ModuleDecl, Program
from repro.langs.cimp.semantics import CIMP
from repro.langs.minic import compile_unit, link_units
from repro.obs import heap, ledger
from repro.obs import status as live_status
from repro.semantics import (
    GlobalContext,
    NonPreemptiveSemantics,
    PreemptiveSemantics,
    ReplayDivergence,
    find_race,
    load_witness,
    minimize_witness,
    program_behaviours,
    record_race,
    replay_witness,
    save_witness,
)
from repro.compiler import compile_minic
from repro.compiler.pprint import dump_pipeline, dump_stage
from repro.fuzz.generators import DEFAULT_KINDS as DEFAULT_FUZZ_KINDS
from repro.semantics.parallel import default_jobs
from repro.simulation.validate import validate_compilation
from repro.tso import DEFAULT_LOCK_ADDR, lock_spec


class UsageError(Exception):
    """A user-input problem surfaced after argparse: exit code 2."""


def _parse_threads(spec):
    """Split a ``--threads`` value into clean entry names.

    Whitespace around entries is stripped (``--threads "main, worker"``
    is the natural shell spelling); empty entries — a trailing comma,
    ``",,"``, or a blank value — are rejected instead of silently
    producing a bogus entry name that failed later with a raw
    traceback.
    """
    entries = [name.strip() for name in spec.split(",")]
    if not entries or any(not name for name in entries):
        raise UsageError(
            "--threads: empty entry name in {!r} (expected "
            "comma-separated function names)".format(spec)
        )
    return entries


def _check_entries(ctx, entries):
    """Reject entry names the program cannot resolve, listing the
    known ones (languages without entry listings skip the check and
    fail at thread-creation time as before)."""
    known = ctx.entry_names()
    if known is None:
        return
    unknown = [name for name in entries if name not in known]
    if unknown:
        raise UsageError(
            "--threads: unknown entry point(s) {}; known entries: {}"
            .format(
                ", ".join(repr(n) for n in unknown),
                ", ".join(known) or "(none)",
            )
        )


def _build(path, use_lock):
    with open(path) as handle:
        text = handle.read()
    extra = {"L": DEFAULT_LOCK_ADDR} if use_lock else None
    modules, genvs, _ = link_units([compile_unit(text)], extra)
    if use_lock:
        modules = [m.with_forbidden({DEFAULT_LOCK_ADDR}) for m in modules]
    return modules[0], genvs[0]


def _program(stage, genv, entries, use_lock):
    decls = [ModuleDecl(stage.lang, genv, stage.module)]
    if use_lock:
        spec_mod, spec_ge = lock_spec()
        decls.append(ModuleDecl(CIMP, spec_ge, spec_mod))
    return Program(decls, entries)


def cmd_compile(args):
    module, _genv = _build(args.file, args.lock)
    result = compile_minic(module, optimize=args.optimize)
    if args.dump == "all":
        print(dump_pipeline(result))
        return 0
    if args.dump:
        wanted = (
            result.source
            if args.dump == "source"
            else result.stage(args.dump)
        )
        print(dump_stage(wanted))
        return 0
    for stage in result.stages:
        print("{:14s} ({})".format(stage.name, stage.lang.name))
    return 0


def _note_run_config(args, result, entries):
    """Record the run's *resolved* configuration and input identity in
    the active ledger (no-op without one): flags, the gate defaults
    they fell back to, and the content hash of the program + pass
    pipeline — the key the validation-cache work will index."""
    from repro.semantics.por import default_reduce

    por = args.por if args.por is not None else default_reduce()
    pipeline = tuple(s.name for s in result.stages)
    gates = tuple(
        name
        for name, on in (
            ("por", bool(por)),
            ("closure", closure.enabled()),
            ("stateless-wire", bool(os.environ.get(ENV_STATELESS))),
            ("heap-profile", heap.enabled()),
        )
        if on
    )
    ledger.set_config(
        file=args.file,
        threads=list(entries),
        lock=bool(args.lock),
        optimize=bool(args.optimize),
        por=bool(por),
        closure_compile=closure.enabled(),
        jobs=getattr(args, "jobs", 1),
        max_states=getattr(args, "max_states", None),
        max_atomic_steps=getattr(args, "max_atomic_steps", None),
        stateless_wire=bool(os.environ.get(ENV_STATELESS)),
        heap_profile=heap.enabled(),
    )
    ledger.note(
        content_hash=ledger.content_hash(args.file, pipeline, gates),
        pipeline=list(pipeline),
    )


def cmd_run(args):
    module, genv = _build(args.file, args.lock)
    result = compile_minic(module, optimize=args.optimize)
    stage = (
        result.source
        if args.stage == "source"
        else result.stage(args.stage)
    )
    entries = _parse_threads(args.threads)
    prog = _program(stage, genv, entries, args.lock)
    ctx = GlobalContext(prog)
    _check_entries(ctx, entries)
    _note_run_config(args, result, entries)
    behs = program_behaviours(
        ctx,
        PreemptiveSemantics(),
        max_states=args.max_states,
        reduce=args.por,
        jobs=args.jobs,
    )
    ledger.note(
        verdict="behaviours",
        behaviours=len(behs),
        fingerprint=ledger.fingerprint_behaviours(behs),
    )
    for b in sorted(behs, key=repr):
        print(b)
    return 0


def cmd_validate(args):
    module, genv = _build(args.file, args.lock)
    result = compile_minic(module, optimize=args.optimize)
    mem = genv.memory()
    cap = max(args.max_failures, 0)
    ok = True
    for v in validate_compilation(result, mem, mem.domain()):
        status = "ok" if v.ok else "FAILED"
        print("{:14s} {}".format(v.pass_name, status))
        shown = v.report.failures[:cap]
        for failure in shown:
            print("    ", failure)
        extra = len(v.report.failures) - len(shown)
        if extra > 0:
            print("     (+{} more)".format(extra))
        ok = ok and v.ok
    return 0 if ok else 1


def cmd_drf(args):
    module, genv = _build(args.file, args.lock)
    result = compile_minic(module, optimize=args.optimize)
    entries = _parse_threads(args.threads)
    prog = _program(result.source, genv, entries, args.lock)
    ctx = GlobalContext(prog)
    _check_entries(ctx, entries)
    _note_run_config(args, result, entries)
    semantics = PreemptiveSemantics(
        max_atomic_steps=args.max_atomic_steps
    )
    witness = find_race(
        ctx,
        semantics,
        max_states=args.max_states,
        reduce=args.por,
        jobs=args.jobs,
    )
    verdict = witness is None
    ledger.note(verdict="drf" if verdict else "race")
    print("DRF:", verdict)
    if witness is not None and args.witness_out:
        record = record_race(
            witness,
            program={
                "file": args.file,
                "threads": ",".join(entries),
                "lock": args.lock,
                "optimize": args.optimize,
            },
            # The semantics' actual bound: replay re-derives the race
            # via predict() with this value, so a hardcoded 64 would
            # silently diverge under --max-atomic-steps.
            meta={"max_atomic_steps": semantics.max_atomic_steps},
        )
        if args.minimize:
            record = minimize_witness(ctx, record)
        save_witness(args.witness_out, record)
        print(
            "witness: {} step(s){} -> {}".format(
                len(record.schedule),
                " (minimized)" if record.minimized else "",
                args.witness_out,
            )
        )
    return 0 if verdict else 1


def cmd_replay(args):
    record = load_witness(args.witness)
    # Explicit CLI flags win (--lock/--no-lock, -O/--no-optimize); the
    # witness's recorded program info fills the gaps, so
    # `repro replay FILE --witness W` needs no repeated flags.
    info = record.program
    threads = args.threads or info.get("threads", "main")
    use_lock = (
        bool(info.get("lock")) if args.lock is None else args.lock
    )
    optimize = (
        bool(info.get("optimize"))
        if args.optimize is None
        else args.optimize
    )
    module, genv = _build(args.file, use_lock)
    result = compile_minic(module, optimize=optimize)
    entries = _parse_threads(threads)
    prog = _program(result.source, genv, entries, use_lock)
    ctx = GlobalContext(prog)
    _check_entries(ctx, entries)
    try:
        res = replay_witness(ctx, record)
    except ReplayDivergence as exc:
        print("replay: DIVERGED: {}".format(exc))
        return 1
    print(
        "replay: OK ({} step(s), end={}, verdict={})".format(
            len(record.schedule), res.end, record.verdict
        )
    )
    if args.minimize and record.verdict == "race":
        record = minimize_witness(ctx, record)
        print("minimized: {} step(s)".format(len(record.schedule)))
    if args.witness_out:
        save_witness(args.witness_out, record)
        print("witness written to {}".format(args.witness_out))
    return 0


def cmd_fuzz(args):
    from repro.fuzz.campaign import CampaignConfig, run_campaign
    from repro.fuzz.corpus import Corpus, CorpusError
    from repro.fuzz.generators import GeneratorError, KINDS

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    if not kinds:
        raise UsageError("--kinds: no generator kinds given")
    if args.inject_broken and "minic-lock-broken" not in kinds:
        kinds.append("minic-lock-broken")
    try:
        cfg = CampaignConfig(
            seed=args.seed,
            count=args.count,
            kinds=kinds,
            out=args.out,
            jobs=args.jobs,
            max_states=args.max_states,
            max_events=args.max_events,
            max_atomic_steps=args.max_atomic_steps,
            minimize_rounds=args.minimize_rounds,
            minimize_seconds=args.minimize_seconds,
            duration=args.duration,
            fresh=args.fresh,
        )
    except GeneratorError as exc:
        raise UsageError(str(exc))
    try:
        stats = run_campaign(cfg)
    except (CorpusError, GeneratorError) as exc:
        raise UsageError(str(exc))
    print(
        "fuzz: {} input(s) executed, {} resumed from checkpoint, "
        "{} dedup hit(s){}".format(
            stats.executed, stats.skipped, stats.dedup_hits,
            ""
            if stats.stopped == "done"
            else " (stopped: {})".format(stats.stopped),
        )
    )
    print(
        "corpus: {} program(s) at {}".format(
            Corpus(cfg.out).program_count(), cfg.out
        )
    )
    print(
        "findings: {} ({} unexpected)".format(
            stats.findings, stats.unexpected
        )
    )
    return 1 if stats.unexpected else 0


def cmd_inspect(args):
    from repro.obs.explain import inspect_path

    print(inspect_path(args.artifact))
    return 0


def cmd_profile(args):
    from repro.obs.profile import load_profile, render_profile

    try:
        profile = load_profile(args.trace_file, args.metrics_in)
    except OSError as exc:
        raise UsageError("cannot read profile inputs: {}".format(exc))
    if args.metrics_format == "prom":
        if profile["metrics"] is None:
            raise UsageError(
                "no metrics snapshot found: pass --metrics-in FILE, or "
                "re-run the traced command with --metrics/--metrics-out "
                "so the trace ends with a metrics record"
            )
        from repro.obs.prom import render_prometheus

        sys.stdout.write(render_prometheus(profile["metrics"]))
        return 0
    print(render_profile(profile, top=args.top))
    return 0


def cmd_npdrf(args):
    module, genv = _build(args.file, args.lock)
    result = compile_minic(module, optimize=args.optimize)
    entries = _parse_threads(args.threads)
    prog = _program(result.source, genv, entries, args.lock)
    ctx = GlobalContext(prog)
    _check_entries(ctx, entries)
    _note_run_config(args, result, entries)
    semantics = NonPreemptiveSemantics(
        max_atomic_steps=args.max_atomic_steps
    )
    witness = find_race(
        ctx,
        semantics,
        max_states=args.max_states,
        reduce=args.por,
        jobs=args.jobs,
    )
    verdict = witness is None
    ledger.note(verdict="npdrf" if verdict else "race")
    print("NPDRF:", verdict)
    return 0 if verdict else 1


def cmd_status(args):
    import time as _time

    doc = live_status.load(args.file)
    if doc is None:
        raise UsageError(
            "cannot read status file {!r} (no heartbeat yet, or not "
            "a JSON document)".format(args.file)
        )
    print(live_status.render_status(doc))
    if not args.watch:
        return 0
    try:
        while doc is None or doc.get("phase") != "done":
            _time.sleep(max(args.interval, 0.05))
            doc = live_status.load(args.file)
            if doc is not None:
                print()
                print(live_status.render_status(doc))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_compare(args):
    try:
        a = ledger.load_manifest(args.a)
        b = ledger.load_manifest(args.b)
    except (OSError, ValueError) as exc:
        raise UsageError("cannot load run manifest: {}".format(exc))
    report, regressions = ledger.compare_manifests(
        a, b, tolerance=args.tolerance
    )
    print(report)
    if regressions and args.fail_on_regression:
        return 1
    return 0


def make_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CASCompCert reproduction: compile, run, validate "
        "and race-check concurrent MiniC programs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def obs_flags(p):
        p.add_argument(
            "--metrics", action="store_true",
            help="collect metrics and print a summary table "
            "(also REPRO_METRICS=1)",
        )
        p.add_argument(
            "--metrics-out", metavar="FILE",
            help="write the final metrics snapshot as JSON to FILE "
            "(also REPRO_METRICS_OUT=FILE)",
        )
        p.add_argument(
            "--trace", metavar="FILE",
            help="write a JSON-lines span trace to FILE "
            "(also REPRO_TRACE=FILE)",
        )
        p.add_argument(
            "--metrics-format", choices=("table", "prom"),
            default="table", metavar="FMT",
            help="metrics summary format: 'table' (default) or 'prom' "
            "(Prometheus text exposition)",
        )
        p.add_argument(
            "--ledger", metavar="FILE",
            help="write a versioned run manifest (config, content "
            "hash, phase times, metrics, verdict) to FILE "
            "(also REPRO_LEDGER=FILE); diff with 'repro compare'",
        )

    def common(p, tristate=False):
        p.add_argument("file", help="MiniC source file")
        if tristate:
            # Replay merges these with the witness's recorded program
            # info: an *explicit* CLI choice wins (including
            # --no-lock/--no-optimize), an omitted flag defers to the
            # witness. A plain store_true cannot express "explicitly
            # off", which made lock:true witnesses impossible to
            # replay unlocked.
            p.add_argument(
                "-O", "--optimize",
                action=argparse.BooleanOptionalAction, default=None,
                help="enable ConstProp/CSE/Deadcode (default: as "
                "recorded in the witness)",
            )
            p.add_argument(
                "--lock",
                action=argparse.BooleanOptionalAction, default=None,
                help="link against the lock object (default: as "
                "recorded in the witness)",
            )
        else:
            p.add_argument(
                "-O", "--optimize", action="store_true",
                help="enable ConstProp/CSE/Deadcode",
            )
            p.add_argument(
                "--lock", action="store_true",
                help="link against the lock object (lock()/unlock())",
            )
        obs_flags(p)

    def live_flags(p):
        p.add_argument(
            "--status", metavar="FILE",
            help="rewrite a live heartbeat JSON snapshot to FILE "
            "about once per second (also REPRO_STATUS=FILE; "
            "interval via REPRO_STATUS_INTERVAL); watch with "
            "'repro status FILE'",
        )
        p.add_argument(
            "--heap-profile", action="store_true",
            help="census the intern tables and the explored graph's "
            "sharing-aware deep size after the run (implies "
            "--metrics; also REPRO_HEAP_PROFILE=1), plus "
            "tracemalloc phase gauges",
        )

    p = sub.add_parser("compile", help="run the pipeline")
    common(p)
    p.add_argument(
        "--dump", metavar="STAGE",
        help="pretty-print a stage (pass name, 'source', or 'all')",
    )
    p.set_defaults(func=cmd_compile)

    def por_flag(p):
        p.add_argument(
            "--por", action=argparse.BooleanOptionalAction,
            default=None,
            help="partial-order reduction (default: REPRO_POR env "
            "setting, on unless set to 0)",
        )

    def closure_flag(p):
        p.add_argument(
            "--closure-compile",
            action=argparse.BooleanOptionalAction, default=None,
            help="closure-compile the step interpreters before "
            "exploring (default: REPRO_CLOSURE env setting, on "
            "unless set to 0)",
        )

    def jobs_flag(p):
        p.add_argument(
            "-j", "--jobs", type=int, default=default_jobs(),
            metavar="N",
            help="shard the exploration across N forked worker "
            "processes (default: REPRO_JOBS env setting or 1 = "
            "sequential)",
        )

    p = sub.add_parser("run", help="enumerate behaviours")
    common(p)
    por_flag(p)
    jobs_flag(p)
    closure_flag(p)
    live_flags(p)
    p.add_argument(
        "--threads", default="main",
        help="comma-separated thread entry functions",
    )
    p.add_argument("--stage", default="source")
    p.add_argument("--max-states", type=int, default=400000)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("validate", help="translation-validate all passes")
    common(p)
    p.add_argument(
        "--max-failures", type=int, default=3, metavar="N",
        help="print at most N failures per pass (default 3)",
    )
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("drf", help="data-race-freedom check")
    common(p)
    por_flag(p)
    jobs_flag(p)
    closure_flag(p)
    live_flags(p)
    p.add_argument("--threads", default="main")
    p.add_argument("--max-states", type=int, default=400000)
    p.add_argument(
        "--max-atomic-steps", type=int, default=64, metavar="N",
        help="bound on atomic-block prediction runs (recorded in "
        "witness metadata so replay uses the same horizon)",
    )
    p.add_argument(
        "--witness-out", metavar="FILE",
        help="write a found race as a replayable witness artifact",
    )
    p.add_argument(
        "--minimize", action="store_true",
        help="shrink the witness schedule before writing it",
    )
    p.set_defaults(func=cmd_drf)

    p = sub.add_parser(
        "npdrf",
        help="race-check under the non-preemptive semantics (NPDRF)",
    )
    common(p)
    por_flag(p)
    jobs_flag(p)
    closure_flag(p)
    live_flags(p)
    p.add_argument("--threads", default="main")
    p.add_argument("--max-states", type=int, default=400000)
    p.add_argument(
        "--max-atomic-steps", type=int, default=64, metavar="N",
        help="bound on atomic-block prediction runs",
    )
    p.set_defaults(func=cmd_npdrf)

    p = sub.add_parser(
        "fuzz",
        help="run a persistent differential fuzzing campaign",
        description="Generate seeded random programs at scale and push "
        "each through the differential harness (compile + per-pass "
        "validation + behaviour equivalence, DRF/NPDRF agreement, "
        "lock-client race checks). Divergences and unexpected races "
        "are auto-minimized into replayable witness artifacts in a "
        "content-hash-deduplicated corpus; the checkpoint is rewritten "
        "atomically after every input, so a killed campaign resumes "
        "without re-running finished work. Exit 0: no unexpected "
        "findings (expected races from --inject-broken do not fail "
        "the run); exit 1: at least one unexpected finding.",
    )
    obs_flags(p)
    jobs_flag(p)
    live_flags(p)
    p.add_argument(
        "--out", default="fuzz-corpus", metavar="DIR",
        help="campaign directory: programs/, witnesses/, "
        "findings.json, checkpoint.json (default ./fuzz-corpus)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed: same seed => byte-identical programs and "
        "corpus hashes (default 0)",
    )
    p.add_argument(
        "--count", type=int, default=50, metavar="N",
        help="inputs in the campaign plan (default 50)",
    )
    p.add_argument(
        "--kinds", default=",".join(DEFAULT_FUZZ_KINDS),
        metavar="K1,K2,...",
        help="generator kinds to round-robin (default: {})".format(
            ",".join(DEFAULT_FUZZ_KINDS)
        ),
    )
    p.add_argument(
        "--inject-broken", action="store_true",
        help="also generate deliberately broken lock clients whose "
        "races are *expected* findings — exercises the campaign's own "
        "detect/minimize/replay alarm path",
    )
    p.add_argument("--max-states", type=int, default=60000)
    p.add_argument(
        "--max-events", type=int, default=24, metavar="N",
        help="behaviour-trace event cap for equivalence checks "
        "(default 24)",
    )
    p.add_argument(
        "--max-atomic-steps", type=int, default=64, metavar="N",
        help="bound on atomic-block prediction runs (default 64)",
    )
    p.add_argument(
        "--minimize-rounds", type=int, default=16, metavar="N",
        help="ddmin round budget per witness shrink (default 16)",
    )
    p.add_argument(
        "--minimize-seconds", type=float, default=5.0, metavar="S",
        help="wall-clock budget per witness shrink (default 5.0)",
    )
    p.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="stop admitting new inputs after this many seconds (the "
        "checkpoint makes the rest resumable)",
    )
    p.add_argument(
        "--fresh", action="store_true",
        help="discard an existing checkpoint instead of resuming",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "replay", help="re-execute a recorded witness and verify it"
    )
    common(p, tristate=True)
    p.add_argument(
        "--witness", required=True, metavar="FILE",
        help="witness artifact to replay (from drf --witness-out)",
    )
    p.add_argument(
        "--threads", default=None,
        help="thread entry functions (default: the witness's recorded "
        "program info)",
    )
    p.add_argument(
        "--minimize", action="store_true",
        help="shrink the witness schedule after verifying it",
    )
    p.add_argument(
        "--witness-out", metavar="FILE",
        help="re-save the (possibly minimized) witness artifact",
    )
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "inspect",
        help="render a witness timeline or summarize a trace file",
    )
    p.add_argument(
        "artifact",
        help="witness JSON or --trace JSONL file to render",
    )
    p.add_argument(
        "--metrics", action="store_true", help=argparse.SUPPRESS
    )
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "profile",
        help="decompose where a metered run's wall-clock went",
    )
    # NB: dest must not be "trace" — main() treats args.trace as the
    # *output* trace to open for writing, which would truncate the
    # very file we are here to read.
    p.add_argument(
        "trace_file", metavar="TRACE",
        help="--trace JSONL file from the run (per-worker .w* sibling "
        "files are picked up automatically)",
    )
    p.add_argument(
        "--metrics-in", metavar="FILE",
        help="metrics snapshot JSON (from --metrics-out); default: "
        "the metrics record embedded at the end of the trace",
    )
    p.add_argument(
        "--metrics-format", choices=("table", "prom"),
        default="table", metavar="FMT",
        help="emit the full report ('table', default) or just the "
        "metrics snapshot as Prometheus text exposition ('prom')",
    )
    p.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="rows in the top-spans-by-self-time table (default 12)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "status",
        help="render a live heartbeat file from a --status run",
    )
    p.add_argument(
        "file", help="heartbeat JSON file a running command rewrites"
    )
    p.add_argument(
        "--watch", action="store_true",
        help="keep re-rendering until the run reports phase=done "
        "(Ctrl-C to stop)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="re-render cadence with --watch (default 1.0)",
    )
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "compare",
        help="diff two run manifests written with --ledger",
    )
    p.add_argument("a", help="baseline run manifest (run.json)")
    p.add_argument("b", help="candidate run manifest")
    p.add_argument(
        "--tolerance", type=float, default=0.4, metavar="T",
        help="relative slowdown on a directed metric counted as a "
        "regression (default 0.4)",
    )
    p.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when a directed metric regressed beyond the "
        "tolerance (or the behaviour fingerprints diverged on "
        "identical inputs)",
    )
    p.set_defaults(func=cmd_compare)
    return parser


def main(argv=None):
    args = make_parser().parse_args(argv)
    try:
        # Flags layer on top of the REPRO_METRICS / REPRO_TRACE env vars.
        obs.configure_from_env()
        obs.configure(
            metrics=getattr(args, "metrics", False),
            trace=getattr(args, "trace", None),
            metrics_out_path=getattr(args, "metrics_out", None),
        )
    except OSError as exc:
        print("repro: cannot open trace file: {}".format(exc),
              file=sys.stderr)
        return 2
    # Live layer: heartbeat, run ledger, heap census. Flags layer on
    # the env vars the same way the obs sinks do.
    live_status.configure_from_env()
    if getattr(args, "status", None):
        live_status.configure(args.status)
    if getattr(args, "heap_profile", False):
        heap.set_enabled(True)
    ledger.configure_from_env(
        args.command, argv=sys.argv[1:] if argv is None else list(argv)
    )
    if getattr(args, "ledger", None):
        ledger.configure(
            args.ledger, args.command,
            argv=sys.argv[1:] if argv is None else list(argv),
        )
    if ledger.active is not None or heap.enabled():
        # Both the manifest's metrics section and the census gauges
        # need the registry, whether or not --metrics was passed.
        obs.configure(metrics=True)
    if heap.enabled():
        heap.start_tracemalloc()
    # --metrics-out implies the registry but not the stdout table;
    # only an explicit --metrics (or REPRO_METRICS) prints the summary.
    show_summary = getattr(args, "metrics", False) or os.environ.get(
        obs.ENV_METRICS, ""
    ).strip().lower() in ("1", "true", "yes", "on")
    # --closure-compile/--no-closure-compile layers on REPRO_CLOSURE
    # the same way --por layers on REPRO_POR: an explicit flag wins,
    # an omitted one defers to the environment.
    closure.set_enabled(getattr(args, "closure_compile", None))
    code = 2
    try:
        result = args.func(args)
        if show_summary and obs.metrics_enabled():
            if getattr(args, "metrics_format", "table") == "prom":
                sys.stdout.write(obs.render_prom())
            else:
                print()
                print(obs.render_summary())
        code = result
        return result
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        code = 0
        return 0
    except UsageError as exc:
        print("repro: error: {}".format(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The conventional 128+SIGINT code, with a one-line note
        # instead of a traceback. The ledger/status finalizers below
        # still run and stamp the 130, and any parallel coordinator's
        # ``finally`` has already reaped its forked workers on the way
        # up — Ctrl-C must leak neither artifacts nor processes.
        print("repro: interrupted", file=sys.stderr)
        code = 130
        return 130
    except Exception as exc:
        # Internal failure, distinct from an analysis finding (1):
        # scripts gating on "race found" must not confuse it with a
        # crash or an exceeded exploration bound.
        print(
            "repro: internal error: {}: {}".format(
                type(exc).__name__, exc
            ),
            file=sys.stderr,
        )
        return 2
    finally:
        # Manifest and final heartbeat go first: the ledger reads the
        # metrics snapshot obs.shutdown() is about to drop, and both
        # must record the exit status. Neither may mask the command's
        # own outcome.
        try:
            if heap.enabled():
                heap.phase_snapshot("total")
            ledger.finalize(code, obs.dump())
        except Exception as exc:
            print(
                "repro: ledger write failed: {}".format(exc),
                file=sys.stderr,
            )
        try:
            live_status.finalize(exit_status=code)
        except Exception as exc:
            print(
                "repro: status write failed: {}".format(exc),
                file=sys.stderr,
            )
        heap.set_enabled(None)
        obs.shutdown()


if __name__ == "__main__":
    sys.exit(main())
