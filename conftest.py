"""Root conftest: makes the ``tests`` package importable from the
benchmark suite as well (pytest inserts the rootdir on sys.path)."""
